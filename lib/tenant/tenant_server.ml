type config = {
  lanes_per_shard : int;
  mesh : Mesh.t;
  mode : Engine.mode;
  policy : Sched_policy.t;
  admission : Admission.config;
  pool : Pool.config;
  preempt : bool;
  checkpoint_interval : int;
  faults : Fault.event list;
  keep_outputs : bool;
  max_rounds : int;
  metrics : Obs_metrics.t option;
  sink : Obs_sink.t option;
  slo : Obs_slo.t option;
  slo_drive : bool;
}

let default_config ~mesh =
  {
    lanes_per_shard = 8;
    mesh;
    mode = Engine.Hybrid;
    policy = Sched_policy.Earliest;
    admission = Admission.default;
    pool = Pool.default;
    preempt = true;
    checkpoint_interval = 32;
    faults = [];
    keep_outputs = true;
    max_rounds = 10_000_000;
    metrics = None;
    sink = None;
    slo = None;
    slo_drive = false;
  }

type completion = {
  c_item : Admission.item;
  c_outputs : Tensor.t list option;
  c_started : float;
  c_finished : float;
  c_shard : int;
  c_preempted : int;
  c_marks : (string * float * float) list;
}

type stats = {
  completions : completion list;
  throttled : Admission.item list;
  rejected : (Admission.item * Admission.reason) list;
  shed : Admission.item list;
  rounds : int;
  makespan : float;
  preemptions : int;
  resumes : int;
  migrations : int;
  migration_bytes : float;
  binds : int;
  rebinds : int;
  grows : int;
  shrinks : int;
  checkpoints : int;
  restores : int;
  wasted_rounds : int;
  peak_active : int;
  counters : Engine.Counters.t;
}

type source = {
  mutable ahead : Admission.item option;  (* one-slot lookahead *)
  next : unit -> Admission.item option;
}

let source_of_fun next = { ahead = None; next }

let source_of_list items =
  let rest = ref items in
  source_of_fun (fun () ->
      match !rest with
      | [] -> None
      | it :: tl ->
        rest := tl;
        Some it)

let src_peek s =
  match s.ahead with
  | Some _ as it -> it
  | None ->
    s.ahead <- s.next ();
    s.ahead

let src_pop s =
  match src_peek s with
  | None -> None
  | Some _ as it ->
    s.ahead <- None;
    it

(* ---------- runtime state ---------- *)

type flight = {
  f_item : Admission.item;
  f_lanes : int array;
  f_started : float;
  f_preempted : int;
  f_marks : (string * float * float) list;  (* newest first; immutable *)
}

type parked = {
  p_item : Admission.item;
  p_states : Pc_vm.Lanes.lane_state array;
  p_started : float;
  p_preempted : int;
  p_from : int;
  p_at : float;
  p_seq : int;
  p_marks : (string * float * float) list;
}

type ckpt = {
  k_image : Pc_vm.Lanes.image;
  k_engine : Engine.snapshot;
  k_flight : flight list;
  k_draining : bool;
}

type binding = {
  b_digest : int64;
  b_program : Autobatch.compiled;
  b_lanes : Pc_vm.Lanes.t;
  mutable b_flight : flight list;  (* admission order *)
  mutable b_draining : bool;
  mutable b_ckpt : ckpt;
  mutable b_since : int;           (* rounds since the last checkpoint *)
  mutable b_admitted_since : Admission.item list;  (* newest first *)
  mutable b_done_since : completion list;          (* newest first *)
  mutable b_force_ckpt : bool;
}

type shard = {
  s_id : int;
  s_engine : Engine.t;
  mutable s_b : binding option;
}

let bytes_of outputs =
  List.fold_left (fun acc x -> acc +. (8. *. float_of_int (Tensor.numel x))) 0. outputs

let run ?config src =
  let cfg =
    match config with Some c -> c | None -> default_config ~mesh:(Mesh.gpu_pod ~n:4 ())
  in
  if cfg.lanes_per_shard <= 0 then
    invalid_arg "Tenant_server.run: lanes_per_shard must be positive";
  let n_shards = Mesh.size cfg.mesh in
  let z = cfg.lanes_per_shard in
  let emit ev = match cfg.sink with Some s -> s ev | None -> () in
  let shards =
    Array.init n_shards (fun i ->
        let engine = Engine.create ~device:(Mesh.device cfg.mesh i) ~mode:cfg.mode () in
        (match cfg.sink with
        | Some s -> Engine.set_sink engine (Obs_sink.tag_shard i s)
        | None -> ());
        { s_id = i; s_engine = engine; s_b = None })
  in
  let fair = cfg.admission.Admission.mode = Admission.Fair in
  let injector =
    Fault.injector
      (List.filter (fun e -> e.Fault.kind = Fault.Device_kill) cfg.faults)
  in

  let now = ref 0. in
  (* Ladder transitions surface as first-class events, stamped with the
     simulated clock and the cause ("occupancy" or "slo-floor") — rung
     changes stop being opaque. *)
  let adm =
    Admission.create ~config:cfg.admission
      ~on_transition:(fun ~old_level:_ ~new_level ~occupancy ~cause ->
        emit
          (Obs_sink.Ladder
             {
               level = Admission.level_name new_level;
               occupancy;
               cause;
               at = !now;
             }))
      ()
  in
  (* Span ids are a server-global sequence, assigned at emission time
     only — a rolled-back round never consumes ids, so replays stay
     deterministic. *)
  let span_seq = ref 0 in
  let next_span () =
    let s = !span_seq in
    incr span_seq;
    s
  in
  (* Server-lifecycle instants (pool scaling, checkpoint, restore) live
     on the shared ops trace, outside any request's tree. *)
  let ops_span name =
    match cfg.sink with
    | None -> ()
    | Some sink ->
      let span = next_span () in
      sink
        (Obs_sink.Span
           {
             trace = Obs_span.ops_trace;
             span;
             parent = Obs_span.no_parent;
             track = Obs_span.ops_track;
             name;
             t0 = !now;
             t1 = !now;
           })
  in
  (* One span tree per completed request, emitted exactly once — at the
     moment the completion leaves the rollback window (flush), not at
     retire, which a device kill can replay. *)
  let emit_request_spans (c : completion) =
    match cfg.sink with
    | None -> ()
    | Some sink ->
      let r = c.c_item.Admission.request in
      let trace = r.Request.ctx.Obs_span.trace in
      let track = c.c_item.Admission.tenant.Tenant.id in
      let sp ~parent ~name ~t0 ~t1 =
        let span = next_span () in
        sink (Obs_sink.Span { trace; span; parent; track; name; t0; t1 });
        span
      in
      let root =
        sp ~parent:r.Request.ctx.Obs_span.parent ~name:"request"
          ~t0:r.Request.arrival ~t1:c.c_finished
      in
      ignore
        (sp ~parent:root ~name:"queue" ~t0:r.Request.arrival ~t1:c.c_started);
      let service =
        sp ~parent:root ~name:"service" ~t0:c.c_started ~t1:c.c_finished
      in
      List.iter
        (fun (name, t0, t1) -> ignore (sp ~parent:service ~name ~t0 ~t1))
        c.c_marks
  in
  let round = ref 0 in
  let parked = ref ([] : parked list) in
  let seq = ref 0 in
  let completions = ref ([] : completion list) in  (* newest first *)
  let throttled = ref [] and rejected = ref [] and shed = ref [] in
  let preemptions = ref 0 and resumes = ref 0 in
  let migrations = ref 0 and migration_bytes = ref 0. in
  let binds = ref 0 and rebinds = ref 0 and grows = ref 0 and shrinks = ref 0 in
  let checkpoints = ref 0 and restores = ref 0 and wasted = ref 0 in
  let peak_active = ref 0 in
  let target = ref (Stdlib.max cfg.pool.Pool.min_shards 1) in
  let since_scale = ref cfg.pool.Pool.cooldown in
  let max_target = Stdlib.min n_shards cfg.pool.Pool.max_shards in
  if !target > max_target then target := max_target;

  let active_count () =
    Array.fold_left
      (fun acc s ->
        match s.s_b with Some b when not b.b_draining -> acc + 1 | _ -> acc)
      0 shards
  in
  let draining_count () =
    Array.fold_left
      (fun acc s ->
        match s.s_b with Some b when b.b_draining -> acc + 1 | _ -> acc)
      0 shards
  in
  let live_lanes () =
    Array.fold_left
      (fun acc s ->
        match s.s_b with
        | Some b when not b.b_draining -> acc + Pc_vm.Lanes.live_count b.b_lanes
        | _ -> acc)
      0 shards
  in
  let flights_exist () =
    Array.exists (fun s -> match s.s_b with Some b -> b.b_flight <> [] | None -> false) shards
  in

  (* ---------- checkpoints and recovery ---------- *)
  let ckpt_bytes b =
    let total = ref 64. in
    for lane = 0 to z - 1 do
      if Pc_vm.Lanes.occupied b.b_lanes ~lane then
        total :=
          !total
          +. Pc_vm.Lanes.lane_state_bytes (Pc_vm.Lanes.export_lane b.b_lanes ~lane)
    done;
    !total
  in
  let capture_ckpt s b =
    {
      k_image = Pc_vm.Lanes.capture b.b_lanes;
      k_engine = Engine.snapshot s.s_engine;
      k_flight = List.map (fun f -> { f with f_lanes = Array.copy f.f_lanes }) b.b_flight;
      k_draining = b.b_draining;
    }
  in
  (* Completions leave the rollback window only here: once flushed they
     are final, and the tenants' completion counters move with them. *)
  let flush_done b =
    List.iter
      (fun c ->
        c.c_item.Admission.tenant.Tenant.completed <-
          c.c_item.Admission.tenant.Tenant.completed + 1;
        emit_request_spans c)
      b.b_done_since;
    completions := b.b_done_since @ !completions;
    b.b_done_since <- []
  in
  let do_checkpoint s b =
    flush_done b;
    b.b_ckpt <- capture_ckpt s b;
    b.b_since <- 0;
    b.b_admitted_since <- [];
    b.b_force_ckpt <- false;
    incr checkpoints;
    ops_span "checkpoint";
    emit (Obs_sink.Checkpoint { step = !round; bytes = int_of_float (ckpt_bytes b) })
  in
  let restore_shard s b =
    (* Work admitted after the checkpoint goes back to the queue head in
       deterministic order; its unflushed completions are discarded (the
       re-execution recreates them bitwise). *)
    let requeue = Admission.requeue_order b.b_admitted_since in
    List.iter (Admission.push_front adm) (List.rev requeue);
    b.b_admitted_since <- [];
    b.b_done_since <- [];
    Pc_vm.Lanes.restore b.b_lanes b.b_ckpt.k_image;
    Engine.restore s.s_engine b.b_ckpt.k_engine;
    b.b_flight <-
      List.map (fun f -> { f with f_lanes = Array.copy f.f_lanes }) b.b_ckpt.k_flight;
    b.b_draining <- b.b_ckpt.k_draining;
    wasted := !wasted + b.b_since;
    b.b_since <- 0;
    b.b_force_ckpt <- false;
    incr restores;
    ops_span "restore";
    emit (Obs_sink.Restore { step = !round })
  in

  (* ---------- binding ---------- *)
  let bind s digest (program : Autobatch.compiled) =
    let vm_config =
      {
        Pc_vm.default_config with
        Pc_vm.sched = cfg.policy;
        engine = Some s.s_engine;
        sink = Option.map (Obs_sink.tag_shard s.s_id) cfg.sink;
      }
    in
    let lanes =
      Pc_vm.Lanes.create ~config:vm_config program.Autobatch.registry
        program.Autobatch.stack ~z
    in
    let b =
      {
        b_digest = digest;
        b_program = program;
        b_lanes = lanes;
        b_flight = [];
        b_draining = false;
        b_ckpt =
          {
            k_image = Pc_vm.Lanes.capture lanes;
            k_engine = Engine.snapshot s.s_engine;
            k_flight = [];
            k_draining = false;
          };
        b_since = 0;
        b_admitted_since = [];
        b_done_since = [];
        b_force_ckpt = false;
      }
    in
    s.s_b <- Some b;
    b
  in
  let unbind s b =
    flush_done b;
    s.s_b <- None
  in

  (* ---------- arrivals ---------- *)
  let ingest () =
    let continue = ref true in
    while !continue do
      match src_peek src with
      | Some it when it.Admission.request.Request.arrival <= !now ->
        ignore (src_pop src);
        let r = it.Admission.request in
        if Request.width r > z then begin
          (* Wider than a whole shard: unservable by construction. *)
          rejected := (it, Admission.Queue_full) :: !rejected;
          emit (Obs_sink.Request_rejected { id = r.Request.id; at = !now })
        end
        else if
          not
            (Tenant.admit it.Admission.tenant ~now:r.Request.arrival
               ~cost:r.Request.cost_hint)
        then begin
          throttled := it :: !throttled;
          emit (Obs_sink.Request_rejected { id = r.Request.id; at = !now })
        end
        else begin
          let slo_bad (victim : Admission.item) =
            match cfg.slo with
            | Some slo ->
              Obs_slo.observe slo
                ~cls:(Tenant.slo_name (Admission.item_slo victim))
                ~now:!now ~ok:false
            | None -> ()
          in
          match Admission.offer adm it with
          | `Admitted ->
            emit (Obs_sink.Request_enqueued { id = r.Request.id; at = !now })
          | `Shed victim ->
            shed := victim :: !shed;
            slo_bad victim;
            emit
              (Obs_sink.Request_shed
                 { id = victim.Admission.request.Request.id; at = !now });
            if victim.Admission.request.Request.id <> r.Request.id then
              emit (Obs_sink.Request_enqueued { id = r.Request.id; at = !now })
          | `Rejected reason ->
            rejected := (it, reason) :: !rejected;
            slo_bad it;
            emit (Obs_sink.Request_rejected { id = r.Request.id; at = !now })
        end
      | _ -> continue := false
    done
  in

  (* ---------- retire ---------- *)
  let retire_shard s b =
    let finished, rest =
      List.partition
        (fun f ->
          Array.for_all (fun lane -> Pc_vm.Lanes.finished b.b_lanes ~lane) f.f_lanes)
        b.b_flight
    in
    b.b_flight <- rest;
    List.iter
      (fun f ->
        let per_lane =
          Array.map
            (fun lane ->
              let outs = Pc_vm.Lanes.retire b.b_lanes ~lane in
              Engine.charge_retire s.s_engine ~bytes:(bytes_of outs);
              outs)
            f.f_lanes
        in
        let outputs =
          let n_outputs = List.length per_lane.(0) in
          List.init n_outputs (fun j ->
              Tensor.stack_rows
                (Array.to_list (Array.map (fun outs -> List.nth outs j) per_lane)))
        in
        let r = f.f_item.Admission.request in
        let c =
          {
            c_item = f.f_item;
            c_outputs = (if cfg.keep_outputs then Some outputs else None);
            c_started = f.f_started;
            c_finished = !now;
            c_shard = s.s_id;
            c_preempted = f.f_preempted;
            c_marks = List.rev f.f_marks;
          }
        in
        b.b_done_since <- c :: b.b_done_since;
        (* The burn-rate monitor is fed at retire (like the completion
           event): a restore replays retired-but-unflushed work, so rates
           can briefly double-count — acceptable for a rate monitor,
           where the span trees above stay exactly-once. *)
        (match cfg.slo with
        | Some slo ->
          Obs_slo.observe_latency slo
            ~cls:(Tenant.slo_name (Admission.item_slo f.f_item))
            ~now:!now
            (!now -. r.Request.arrival)
        | None -> ());
        emit
          (Obs_sink.Request_completed
             {
               id = r.Request.id;
               queued = r.Request.arrival;
               started = f.f_started;
               finished = !now;
             }))
      finished
  in

  (* ---------- need accounting (queued + parked, by digest) ---------- *)
  (* Backlog pressure per digest. In [Fair] mode an item counts its SLO
     class's dispatch weight — the admission policy's priorities steer
     shard placement too, so a latency-heavy digest outbids a best-effort
     flood for the next free shard. The [Fifo] baseline stays SLO-blind
     everywhere: every item counts 1. *)
  let item_score (it : Admission.item) =
    if fair then cfg.admission.Admission.weights.(Admission.item_rank it) else 1
  in
  let need_table () =
    let tbl : (int64, int * float * Autobatch.compiled) Hashtbl.t =
      Hashtbl.create 16
    in
    let note (it : Admission.item) =
      let arrival = it.Admission.request.Request.arrival in
      let w = item_score it in
      match Hashtbl.find_opt tbl it.Admission.digest with
      | Some (n, a0, p) ->
        Hashtbl.replace tbl it.Admission.digest (n + w, Float.min a0 arrival, p)
      | None ->
        Hashtbl.replace tbl it.Admission.digest
          (w, arrival, it.Admission.request.Request.program)
    in
    Admission.iter adm note;
    List.iter (fun p -> note p.p_item) !parked;
    tbl
  in
  let need_count tbl digest =
    match Hashtbl.find_opt tbl digest with Some (n, _, _) -> n | None -> 0
  in
  (* Digests with pending work and no free lane anywhere serving them,
     most loaded first (ties: earliest arrival, then digest). *)
  let starving tbl =
    let served_free digest =
      Array.fold_left
        (fun acc s ->
          match s.s_b with
          | Some b when (not b.b_draining) && b.b_digest = digest ->
            acc + Pc_vm.Lanes.free_count b.b_lanes
          | _ -> acc)
        0 shards
    in
    Hashtbl.fold
      (fun digest (n, a0, p) acc ->
        if served_free digest = 0 then (digest, n, a0, p) :: acc else acc)
      tbl []
    |> List.sort (fun (d1, n1, a1, _) (d2, n2, a2, _) ->
           match compare n2 n1 with
           | 0 -> ( match compare a1 a2 with 0 -> Int64.compare d1 d2 | c -> c)
           | c -> c)
  in

  (* ---------- admission to lanes ---------- *)
  let start_flight s b (it : Admission.item) ~started ~preempted =
    let r = it.Admission.request in
    let w = Request.width r in
    let free =
      Array.init z (fun lane -> not (Pc_vm.Lanes.occupied b.b_lanes ~lane))
    in
    let lanes =
      match Sched_plan.choose_lanes ~free ~width:w with
      | Some lanes -> lanes
      | None -> invalid_arg "Tenant_server: refill chose a full shard"
    in
    Array.iteri
      (fun i lane ->
        let inputs = Request.lane_inputs r ~row:i in
        Pc_vm.Lanes.load b.b_lanes ~lane ~member:(r.Request.member + i) ~inputs;
        Engine.charge_refill s.s_engine ~bytes:(bytes_of inputs))
      lanes;
    b.b_flight <-
      b.b_flight
      @ [
          {
            f_item = it;
            f_lanes = lanes;
            f_started = started;
            f_preempted = preempted;
            f_marks = [];
          };
        ]
  in
  let refill_shard s b =
    let continue = ref true in
    while !continue do
      let free = Pc_vm.Lanes.free_count b.b_lanes in
      if free = 0 then continue := false
      else
        match
          Admission.pop adm ~fits:(fun it ->
              it.Admission.digest = b.b_digest
              && Request.width it.Admission.request <= free)
        with
        | Some it ->
          start_flight s b it ~started:!now ~preempted:0;
          b.b_admitted_since <- it :: b.b_admitted_since
        | None -> continue := false
    done
  in
  let refill () =
    Array.iter
      (fun s ->
        match s.s_b with
        | Some b when not b.b_draining -> refill_shard s b
        | _ -> ())
      shards
  in

  (* ---------- preemption ---------- *)
  let park s b f =
    let states =
      Array.map (fun lane -> Pc_vm.Lanes.export_lane b.b_lanes ~lane) f.f_lanes
    in
    Array.iter (fun lane -> Pc_vm.Lanes.evict b.b_lanes ~lane) f.f_lanes;
    let bytes =
      Array.fold_left
        (fun acc st -> acc +. Pc_vm.Lanes.lane_state_bytes st)
        0. states
    in
    Engine.charge_transfer s.s_engine ~name:"preempt-park" ~bytes ~seconds:0.;
    b.b_flight <- List.filter (fun g -> g != f) b.b_flight;
    b.b_force_ckpt <- true;
    incr seq;
    parked :=
      {
        p_item = f.f_item;
        p_states = states;
        p_started = f.f_started;
        p_preempted = f.f_preempted + 1;
        p_from = s.s_id;
        p_at = !now;
        p_seq = !seq;
        p_marks = f.f_marks;
      }
      :: !parked;
    incr preemptions
  in
  (* Victims for a waiting latency-bound head: strictly weaker flights
     on a same-digest shard, weakest class first, most recent start
     first (least progress lost). *)
  let preemption_plan (it : Admission.item) =
    let width = Request.width it.Admission.request in
    let it_rank = Admission.item_rank it in
    let rec scan i =
      if i >= n_shards then None
      else
        match shards.(i).s_b with
        | Some b when (not b.b_draining) && b.b_digest = it.Admission.digest ->
          let free = Pc_vm.Lanes.free_count b.b_lanes in
          if free >= width then Some (shards.(i), b, [])
          else begin
            let candidates =
              List.filter (fun f -> Admission.item_rank f.f_item > it_rank) b.b_flight
              |> List.sort (fun a bb ->
                     match
                       compare (Admission.item_rank bb.f_item) (Admission.item_rank a.f_item)
                     with
                     | 0 -> (
                       match compare bb.f_started a.f_started with
                       | 0 ->
                         compare bb.f_item.Admission.request.Request.id
                           a.f_item.Admission.request.Request.id
                       | c -> c)
                     | c -> c)
            in
            let rec take freed acc = function
              | _ when freed >= width -> Some (List.rev acc)
              | [] -> None
              | f :: tl -> take (freed + Array.length f.f_lanes) (f :: acc) tl
            in
            match take free [] candidates with
            | Some victims -> Some (shards.(i), b, victims)
            | None -> scan (i + 1)
          end
        | _ -> scan (i + 1)
    in
    scan 0
  in
  let preempt_pass () =
    if cfg.preempt && fair then begin
      let continue = ref true in
      while !continue do
        match Admission.peek_strongest_waiting adm with
        | Some it when Admission.item_rank it = Tenant.rank Tenant.Latency_bound -> (
          match preemption_plan it with
          | Some (s, b, victims) ->
            List.iter (fun f -> park s b f) victims;
            let popped =
              Admission.pop adm ~fits:(fun c ->
                  c.Admission.request.Request.id = it.Admission.request.Request.id)
            in
            (match popped with
            | Some it' ->
              start_flight s b it' ~started:!now ~preempted:0;
              b.b_admitted_since <- it' :: b.b_admitted_since;
              b.b_force_ckpt <- true
            | None -> assert false)
          | None -> continue := false)
        | _ -> continue := false
      done
    end
  in

  (* ---------- resume parked work ---------- *)
  let resume_pass () =
    let order =
      List.sort
        (fun a b ->
          match compare (Admission.item_rank a.p_item) (Admission.item_rank b.p_item) with
          | 0 -> (
            match compare a.p_at b.p_at with 0 -> compare a.p_seq b.p_seq | c -> c)
          | c -> c)
        !parked
    in
    List.iter
      (fun p ->
        let width = Array.length p.p_states in
        let rec scan i =
          if i >= n_shards then ()
          else
            match shards.(i).s_b with
            | Some b
              when (not b.b_draining)
                   && b.b_digest = p.p_item.Admission.digest
                   && Pc_vm.Lanes.free_count b.b_lanes >= width ->
              let s = shards.(i) in
              let free =
                Array.init z (fun lane -> not (Pc_vm.Lanes.occupied b.b_lanes ~lane))
              in
              let lanes =
                match Sched_plan.choose_lanes ~free ~width with
                | Some lanes -> lanes
                | None -> assert false
              in
              let bytes = ref 0. in
              Array.iteri
                (fun j lane ->
                  Pc_vm.Lanes.import_lane b.b_lanes ~lane p.p_states.(j);
                  bytes := !bytes +. Pc_vm.Lanes.lane_state_bytes p.p_states.(j);
                  emit
                    (Obs_sink.Migration
                       {
                         src_shard = p.p_from;
                         dst_shard = s.s_id;
                         member = p.p_states.(j).Pc_vm.Lanes.ls_member;
                         bytes = Pc_vm.Lanes.lane_state_bytes p.p_states.(j);
                         step = !round;
                       }))
                lanes;
              let seconds =
                if p.p_from = s.s_id then 0.
                else Collectives.p2p_time cfg.mesh ~bytes:!bytes
              in
              Engine.charge_transfer s.s_engine ~name:"preempt-resume" ~bytes:!bytes
                ~seconds;
              (* The park→resume interval becomes a "preempted" mark on
                 the request's service span; a cross-shard resume adds a
                 "migrate" instant. *)
              let marks =
                let preempted = ("preempted", p.p_at, !now) :: p.p_marks in
                if p.p_from = s.s_id then preempted
                else ("migrate", !now, !now) :: preempted
              in
              b.b_flight <-
                b.b_flight
                @ [
                    {
                      f_item = p.p_item;
                      f_lanes = lanes;
                      f_started = p.p_started;
                      f_preempted = p.p_preempted;
                      f_marks = marks;
                    };
                  ];
              b.b_force_ckpt <- true;
              parked := List.filter (fun q -> q != p) !parked;
              incr resumes
            | _ -> scan (i + 1)
        in
        scan 0)
      order
  in

  (* ---------- pool control ---------- *)
  let pool_control () =
    let signals =
      {
        Pool.backlog = Admission.length adm + List.length !parked;
        active = active_count ();
        draining = draining_count ();
        lanes_per_shard = z;
        live_lanes = live_lanes ();
      }
    in
    (match Pool.decide cfg.pool ~rounds_since_action:!since_scale signals with
    | Pool.Grow ->
      if !target < max_target then begin
        incr target;
        incr grows;
        ops_span "pool-grow";
        since_scale := 0
      end
    | Pool.Shrink ->
      if !target > Stdlib.max cfg.pool.Pool.min_shards 1 then begin
        decr target;
        (* Drain the active shard with the least live work; ties to the
           highest id so shard 0 is the last to go. *)
        let victim = ref None in
        Array.iter
          (fun s ->
            match s.s_b with
            | Some b when not b.b_draining ->
              let live = Pc_vm.Lanes.live_count b.b_lanes in
              (match !victim with
              | Some (_, best) when best < live -> ()
              | _ -> victim := Some (s, live))
            | _ -> ())
          shards;
        (match !victim with
        | Some (s, _) ->
          (match s.s_b with
          | Some b ->
            b.b_draining <- true;
            b.b_force_ckpt <- true
          | None -> ());
          incr shrinks;
          ops_span "pool-shrink";
          since_scale := 0
        | None -> ())
      end
    | Pool.Hold -> ());
    incr since_scale
  in

  (* ---------- drain migration and unbind ---------- *)
  let drain_pass () =
    Array.iter
      (fun s ->
        match s.s_b with
        | Some b when b.b_draining ->
          if b.b_flight = [] then unbind s b
          else
            List.iter
              (fun f ->
                let width = Array.length f.f_lanes in
                let rec scan i =
                  if i >= n_shards then ()
                  else
                    match shards.(i).s_b with
                    | Some tb
                      when (not tb.b_draining)
                           && tb.b_digest = b.b_digest
                           && Pc_vm.Lanes.free_count tb.b_lanes >= width ->
                      let t = shards.(i) in
                      let free =
                        Array.init z (fun lane ->
                            not (Pc_vm.Lanes.occupied tb.b_lanes ~lane))
                      in
                      let lanes =
                        match Sched_plan.choose_lanes ~free ~width with
                        | Some lanes -> lanes
                        | None -> assert false
                      in
                      let bytes = ref 0. in
                      Array.iteri
                        (fun j dst ->
                          let src = f.f_lanes.(j) in
                          let st = Pc_vm.Lanes.export_lane b.b_lanes ~lane:src in
                          Pc_vm.Lanes.evict b.b_lanes ~lane:src;
                          Pc_vm.Lanes.import_lane tb.b_lanes ~lane:dst st;
                          let sb = Pc_vm.Lanes.lane_state_bytes st in
                          bytes := !bytes +. sb;
                          incr migrations;
                          migration_bytes := !migration_bytes +. sb;
                          emit
                            (Obs_sink.Migration
                               {
                                 src_shard = s.s_id;
                                 dst_shard = t.s_id;
                                 member = st.Pc_vm.Lanes.ls_member;
                                 bytes = sb;
                                 step = !round;
                               }))
                        lanes;
                      let seconds = Collectives.p2p_time cfg.mesh ~bytes:!bytes in
                      Engine.charge_transfer t.s_engine ~name:"drain-migrate"
                        ~bytes:!bytes ~seconds;
                      b.b_flight <- List.filter (fun g -> g != f) b.b_flight;
                      tb.b_flight <-
                        tb.b_flight
                        @ [
                            {
                              f_item = f.f_item;
                              f_lanes = lanes;
                              f_started = f.f_started;
                              f_preempted = f.f_preempted;
                              f_marks = ("migrate", !now, !now) :: f.f_marks;
                            };
                          ];
                      b.b_force_ckpt <- true;
                      tb.b_force_ckpt <- true
                    | _ -> scan (i + 1)
                in
                scan 0)
              b.b_flight;
          (match s.s_b with
          | Some b when b.b_draining && b.b_flight = [] -> unbind s b
          | _ -> ())
        | _ -> ())
      shards
  in

  (* ---------- rebind and demand binding ---------- *)
  let bind_pass () =
    let tbl = need_table () in
    (* Rebind: an empty binding turns toward starving work when its own
       digest has no backlog, or strictly less than the most starving
       digest's (strictness prevents two equal backlogs from trading the
       shard back and forth). *)
    Array.iter
      (fun s ->
        match s.s_b with
        | Some b when (not b.b_draining) && b.b_flight = [] -> (
          let own = need_count tbl b.b_digest in
          match starving tbl with
          | (digest, n, _, program) :: _
            when digest <> b.b_digest && (own = 0 || n > own) ->
            unbind s b;
            ignore (bind s digest program);
            incr rebinds
          | _ -> ())
        | _ -> ())
      shards;
    (* Demand binding: idle shards activate up to the controller's
       target, toward the most starving digest. *)
    let continue = ref true in
    while !continue do
      if active_count () >= !target then continue := false
      else begin
        let tbl = need_table () in
        match starving tbl with
        | (digest, _, _, program) :: _ -> (
          let idle =
            Array.fold_left
              (fun acc s ->
                match (acc, s.s_b) with None, None -> Some s | _ -> acc)
              None shards
          in
          match idle with
          | Some s ->
            ignore (bind s digest program);
            incr binds
          | None -> continue := false)
        | [] -> continue := false
      end
    done
  in

  (* ---------- checkpoint cadence ---------- *)
  let checkpoint_pass () =
    Array.iter
      (fun s ->
        match s.s_b with
        | Some b ->
          if
            b.b_force_ckpt
            || (cfg.checkpoint_interval > 0 && b.b_since >= cfg.checkpoint_interval)
          then do_checkpoint s b
        | None -> ())
      shards
  in

  (* ---------- the round loop ---------- *)
  let finished = ref false in
  while not !finished do
    incr round;
    if !round > cfg.max_rounds then
      failwith
        (Printf.sprintf
           "Tenant_server.run: max_rounds exceeded (no progress?): queued %d, \
            parked %d, %s"
           (Admission.length adm) (List.length !parked)
           (String.concat "; "
              (Array.to_list
                 (Array.map
                    (fun s ->
                      match s.s_b with
                      | None -> Printf.sprintf "shard %d idle" s.s_id
                      | Some b ->
                        Printf.sprintf
                          "shard %d digest %Lx flights %d live %d%s" s.s_id
                          b.b_digest (List.length b.b_flight)
                          (Pc_vm.Lanes.live_count b.b_lanes)
                          (if b.b_draining then " draining" else ""))
                    shards))));
    let e0 = Array.map (fun s -> Engine.elapsed s.s_engine) shards in
    ingest ();
    Array.iter
      (fun s -> match s.s_b with Some b -> retire_shard s b | None -> ())
      shards;
    pool_control ();
    drain_pass ();
    bind_pass ();
    refill ();
    preempt_pass ();
    resume_pass ();
    Array.iter
      (fun s -> match s.s_b with Some b -> b.b_since <- b.b_since + 1 | None -> ())
      shards;
    checkpoint_pass ();
    (* One superstep per live shard; shards run in parallel in simulated
       time, so the clock advances by the slowest shard's round. *)
    Array.iter
      (fun s ->
        match s.s_b with
        | Some b when Pc_vm.Lanes.live_count b.b_lanes > 0 ->
          ignore (Pc_vm.Lanes.step b.b_lanes)
        | _ -> ())
      shards;
    (try Fault.tick injector
     with Fault.Injected ev ->
       let s = shards.(ev.Fault.device mod n_shards) in
       (match s.s_b with Some b -> restore_shard s b | None -> ()));
    let delta =
      Array.fold_left
        (fun acc s ->
          let d = Engine.elapsed s.s_engine -. e0.(s.s_id) in
          Float.max acc d)
        0. shards
    in
    now := !now +. delta;
    (* Poll the burn-rate monitor once per round: alert *edges* become
       sink events, and with [slo_drive] a firing alert pins the
       admission ladder at Shed_best_effort until it resolves — the
       ladder's own transition event then records cause "slo-floor". *)
    (match cfg.slo with
    | Some slo ->
      let alerts = Obs_slo.poll slo ~now:!now in
      List.iter (fun a -> emit (Obs_slo.alert_to_event a)) alerts;
      if cfg.slo_drive && fair && alerts <> [] then
        Admission.set_floor adm
          (if Obs_slo.any_firing slo then Admission.Shed_best_effort
           else Admission.Normal)
    | None -> ());
    peak_active := Stdlib.max !peak_active (active_count ());
    let idle =
      (not (flights_exist ())) && Admission.length adm = 0 && !parked = []
    in
    (match (idle, src_peek src) with
    | true, Some it ->
      let a = it.Admission.request.Request.arrival in
      if a > !now then now := a
    | true, None -> finished := true
    | false, _ -> ())
  done;

  (* ---------- final accounting ---------- *)
  Array.iter (fun s -> match s.s_b with Some b -> flush_done b | None -> ()) shards;
  let completions = List.rev !completions in
  let counters =
    Array.fold_left
      (fun acc s -> Engine.Counters.add acc (Engine.snapshot s.s_engine).Engine.at)
      Engine.Counters.zero shards
  in
  (match cfg.metrics with
  | Some m ->
    let hist name = Obs_metrics.histogram m name in
    let by_class name slo = hist (name ^ Tenant.slo_name slo) in
    List.iter
      (fun c ->
        let slo = Admission.item_slo c.c_item in
        let arrival = c.c_item.Admission.request.Request.arrival in
        Obs_metrics.observe (by_class "latency_total_" slo) (c.c_finished -. arrival);
        Obs_metrics.observe (by_class "latency_queue_" slo) (c.c_started -. arrival);
        Obs_metrics.observe (by_class "latency_service_" slo)
          (c.c_finished -. c.c_started))
      completions;
    let cnt name v = Obs_metrics.incr ~by:v (Obs_metrics.counter m name) in
    cnt "tenant_completed" (List.length completions);
    cnt "tenant_throttled" (List.length !throttled);
    cnt "tenant_rejected" (List.length !rejected);
    cnt "tenant_shed" (List.length !shed);
    cnt "tenant_preemptions" !preemptions;
    cnt "tenant_resumes" !resumes;
    cnt "pool_migrations" !migrations;
    cnt "pool_binds" !binds;
    cnt "pool_rebinds" !rebinds;
    cnt "pool_grows" !grows;
    cnt "pool_shrinks" !shrinks;
    cnt "recovery_checkpoints" !checkpoints;
    cnt "recovery_restores" !restores
  | None -> ());
  {
    completions;
    throttled = List.rev !throttled;
    rejected = List.rev !rejected;
    shed = List.rev !shed;
    rounds = !round;
    makespan = !now;
    preemptions = !preemptions;
    resumes = !resumes;
    migrations = !migrations;
    migration_bytes = !migration_bytes;
    binds = !binds;
    rebinds = !rebinds;
    grows = !grows;
    shrinks = !shrinks;
    checkpoints = !checkpoints;
    restores = !restores;
    wasted_rounds = !wasted;
    peak_active = !peak_active;
    counters;
  }
