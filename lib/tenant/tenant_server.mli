(** The multi-tenant serving runtime: admission, SLO-aware preemption,
    shard pools, and mid-traffic recovery, composed over the serving
    and scheduling seams.

    The server owns one {!Pc_vm.Lanes} pool per mesh device ("shard"),
    each bound at any moment to one program digest (the {!Prog_cache}
    identity). A deterministic round loop drives everything on the
    simulated clock:

    + ingest due arrivals through the tenant token buckets and
      {!Admission};
    + retire finished flights;
    + apply the {!Pool} controller (activate an idle shard / drain one);
    + migrate lanes off draining shards to same-digest shards through
      the {!Pc_vm.Lanes} export/import seam, priced as
      {!Collectives.p2p_time} transfers;
    + rebind empty shards toward the neediest digest and bind idle
      shards on demand up to the controller's target;
    + refill free lanes from admission (weighted-fair pop, one shared
      lane-selection path via {!Sched_plan.choose_lanes});
    + preempt: when a latency-bound head cannot start, export the lanes
      of the weakest, most-recently-started victim flights
      ({!Pc_vm.Lanes.export_lane}), park them, and start the head in the
      freed lanes; parked jobs re-import later and continue
      bitwise-exactly — the RNG keys on (seed, member, counter), never
      on lane, shard, or wall time;
    + checkpoint each shard every [checkpoint_interval] rounds (plus a
      forced checkpoint after any preemption, resume, or migration
      touched it, which keeps every lane's authoritative home
      unambiguous);
    + step every live shard one superstep; the clock advances by the
      {e maximum} per-shard engine delta — shards serve independent
      traffic in parallel, there is no cross-shard barrier;
    + tick the fault injector: a [Device_kill] restores only that shard
      from its last checkpoint, re-queues the requests it had admitted
      since, and discards its not-yet-flushed completions — the rest of
      the fleet never notices, and re-execution is bitwise identical.

    Every completed request's outputs are bitwise-identical to running
    it alone with [member_base = member] — cache hit or miss, preempted
    or not, migrated or not, killed or not. The acceptance gate
    ([bench tenant]) checks exactly that. *)

type config = {
  lanes_per_shard : int;
  mesh : Mesh.t;             (** one potential shard per device *)
  mode : Engine.mode;
  policy : Sched_policy.t;
  admission : Admission.config;
  pool : Pool.config;
  preempt : bool;            (** enable latency-bound preemption *)
  checkpoint_interval : int; (** per-shard rounds; 0 = bind-time baseline only *)
  faults : Fault.event list;
      (** device-kill plan on the round clock ([superstep] = round,
          [device] = shard); non-kill kinds are ignored *)
  keep_outputs : bool;
      (** store every completion's output tensors (the bitwise gate
          needs them; million-request sweeps turn this off) *)
  max_rounds : int;          (** safety valve; raises when exceeded *)
  metrics : Obs_metrics.t option;
  sink : Obs_sink.t option;
      (** Beyond the engine/VM event stream, the server emits
          [Obs_sink.Span] trees here — one per completed request (root
          ["request"] with ["queue"]/["service"] children and
          ["preempted"]/["migrate"] marks), emitted exactly once when the
          completion leaves the rollback window; plus server-lifecycle
          instants (["pool-grow"], ["pool-shrink"], ["checkpoint"],
          ["restore"]) on {!Obs_span.ops_trace}, [Obs_sink.Ladder]
          transition events, and [Obs_sink.Slo_alert] edges. Attaching a
          sink charges no simulated cost and leaves outputs bitwise
          identical. *)
  slo : Obs_slo.t option;
      (** burn-rate monitor, keyed by {!Tenant.slo_name}. Completions
          feed it at retire time (total latency vs its class threshold);
          sheds and ladder rejections feed as unconditionally bad; it is
          polled once per round and alert edges go to [sink]. *)
  slo_drive : bool;
      (** let a firing alert pin the admission ladder at
          [Shed_best_effort] ({!Admission.set_floor}) until it resolves.
          Off: the monitor only observes — outputs stay bitwise identical
          to running without it. *)
}

val default_config : mesh:Mesh.t -> config
(** 8 lanes per shard, [Hybrid] engines, [Sched_policy.Earliest],
    {!Admission.default}, {!Pool.default}, preemption on, checkpoint
    every 32 rounds, no faults, outputs kept, no SLO monitor. *)

type completion = {
  c_item : Admission.item;
  c_outputs : Tensor.t list option;
      (** width-leading, exactly {!Autobatch.run_pc}'s layout; [None]
          when [keep_outputs] is off *)
  c_started : float;
  c_finished : float;
  c_shard : int;   (** where it retired *)
  c_preempted : int;  (** times parked *)
  c_marks : (string * float * float) list;
      (** chronological lifecycle marks [(name, t0, t1)] gathered while
          in flight: ["preempted"] park→resume intervals and ["migrate"]
          instants — the same marks that become children of the
          request's ["service"] span *)
}

type stats = {
  completions : completion list;  (** completion order *)
  throttled : Admission.item list;   (** refused by token bucket/quota *)
  rejected : (Admission.item * Admission.reason) list;
  shed : Admission.item list;     (** dropped after admission *)
  rounds : int;
  makespan : float;               (** simulated seconds, arrival of first
                                      work to last completion *)
  preemptions : int;
  resumes : int;
  migrations : int;
  migration_bytes : float;
  binds : int;
  rebinds : int;
  grows : int;
  shrinks : int;
  checkpoints : int;
  restores : int;
  wasted_rounds : int;  (** re-executed after restores *)
  peak_active : int;    (** most simultaneously active shards *)
  counters : Engine.Counters.t;  (** merged across every shard engine *)
}

(** A pull-based arrival stream in nondecreasing arrival order, so
    million-request traces never materialize in memory. *)
type source

val source_of_fun : (unit -> Admission.item option) -> source
val source_of_list : Admission.item list -> source

val run : ?config:config -> source -> stats
(** Drive the stream to completion: every arrival is eventually
    completed, throttled, rejected, or shed; no work is lost to
    scaling, preemption, or injected kills. When [config.metrics] is
    set, per-class latency histograms
    (["latency_total_" ^ Tenant.slo_name], queue/service variants) are
    populated from the completion records at the end — after fault
    rollback, so replayed work is counted exactly once. *)
