type prim_stats = { mutable useful : int; mutable issued : int }

type block_stats = { mutable execs : int; mutable active : int }

type t = {
  prims : (string, prim_stats) Hashtbl.t;
  per_block : (int, block_stats) Hashtbl.t;
  mutable blocks : int;
  mutable active_total : int;
  mutable batch_total : int;
  mutable pushes : int;
  mutable pops : int;
  mutable push_lanes : int;
  mutable pop_lanes : int;
  mutable max_depth : int;
}

let create () =
  {
    prims = Hashtbl.create 32;
    per_block = Hashtbl.create 64;
    blocks = 0;
    active_total = 0;
    batch_total = 0;
    pushes = 0;
    pops = 0;
    push_lanes = 0;
    pop_lanes = 0;
    max_depth = 0;
  }

let reset t =
  Hashtbl.reset t.prims;
  Hashtbl.reset t.per_block;
  t.blocks <- 0;
  t.active_total <- 0;
  t.batch_total <- 0;
  t.pushes <- 0;
  t.pops <- 0;
  t.push_lanes <- 0;
  t.pop_lanes <- 0;
  t.max_depth <- 0

let merge ~into src =
  Hashtbl.iter
    (fun name (s : prim_stats) ->
      match Hashtbl.find_opt into.prims name with
      | Some d ->
        d.useful <- d.useful + s.useful;
        d.issued <- d.issued + s.issued
      | None -> Hashtbl.add into.prims name { useful = s.useful; issued = s.issued })
    src.prims;
  Hashtbl.iter
    (fun b (s : block_stats) ->
      match Hashtbl.find_opt into.per_block b with
      | Some d ->
        d.execs <- d.execs + s.execs;
        d.active <- d.active + s.active
      | None -> Hashtbl.add into.per_block b { execs = s.execs; active = s.active })
    src.per_block;
  into.blocks <- into.blocks + src.blocks;
  into.active_total <- into.active_total + src.active_total;
  into.batch_total <- into.batch_total + src.batch_total;
  into.pushes <- into.pushes + src.pushes;
  into.pops <- into.pops + src.pops;
  into.push_lanes <- into.push_lanes + src.push_lanes;
  into.pop_lanes <- into.pop_lanes + src.pop_lanes;
  if src.max_depth > into.max_depth then into.max_depth <- src.max_depth

let stats_for t name =
  match Hashtbl.find_opt t.prims name with
  | Some s -> s
  | None ->
    let s = { useful = 0; issued = 0 } in
    Hashtbl.add t.prims name s;
    s

let record_prim t ~name ~useful ~issued =
  let s = stats_for t name in
  s.useful <- s.useful + useful;
  s.issued <- s.issued + issued

let record_block ?block t ~active ~batch =
  t.blocks <- t.blocks + 1;
  t.active_total <- t.active_total + active;
  t.batch_total <- t.batch_total + batch;
  match block with
  | None -> ()
  | Some b ->
    let s =
      match Hashtbl.find_opt t.per_block b with
      | Some s -> s
      | None ->
        let s = { execs = 0; active = 0 } in
        Hashtbl.add t.per_block b s;
        s
    in
    s.execs <- s.execs + 1;
    s.active <- s.active + active

let record_push t ~lanes =
  t.pushes <- t.pushes + 1;
  t.push_lanes <- t.push_lanes + lanes

let record_pop t ~lanes =
  t.pops <- t.pops + 1;
  t.pop_lanes <- t.pop_lanes + lanes

let record_depth t d = if d > t.max_depth then t.max_depth <- d

let utilization t ~name =
  match Hashtbl.find_opt t.prims name with
  | None -> None
  | Some s -> if s.issued = 0 then None else Some (float_of_int s.useful /. float_of_int s.issued)

let overall_utilization t =
  if t.batch_total = 0 then 1.
  else float_of_int t.active_total /. float_of_int t.batch_total

let prim_issued t ~name =
  match Hashtbl.find_opt t.prims name with Some s -> s.issued | None -> 0

let prim_useful t ~name =
  match Hashtbl.find_opt t.prims name with Some s -> s.useful | None -> 0

let blocks_executed t = t.blocks

let block_stats t =
  Hashtbl.fold (fun b s acc -> (b, s.execs, s.active) :: acc) t.per_block []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
let pushes t = t.pushes
let pops t = t.pops
let max_depth t = t.max_depth

let pp ppf t =
  Format.fprintf ppf
    "@[<v>blocks %d, overall utilization %.3f, pushes %d, pops %d, max depth %d@,"
    t.blocks (overall_utilization t) t.pushes t.pops t.max_depth;
  let entries =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.prims []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%s: useful %d / issued %d@," name s.useful s.issued)
    entries;
  Format.fprintf ppf "@]"
