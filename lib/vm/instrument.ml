type prim_stats = { mutable useful : int; mutable issued : int }

type block_stats = { mutable execs : int; mutable active : int }

(* The live-lane occupancy gauge: a bounded time series over steps. Each
   bucket aggregates [width] consecutive samples; when all [gauge_buckets]
   fill up, adjacent pairs merge and the width doubles, so the series
   always covers the whole run at bounded memory. *)
let gauge_buckets = 256

type gauge = {
  mutable width : int;            (* samples per bucket *)
  mutable used : int;             (* buckets in use *)
  mutable fill : int;             (* samples in the bucket being filled *)
  live_sum : float array;         (* per bucket: Σ live *)
  lanes_sum : float array;        (* per bucket: Σ lanes *)
}

type t = {
  prims : (string, prim_stats) Hashtbl.t;
  per_block : (int, block_stats) Hashtbl.t;
  mutable blocks : int;
  mutable active_total : int;
  mutable batch_total : int;
  mutable pushes : int;
  mutable pops : int;
  mutable push_lanes : int;
  mutable pop_lanes : int;
  mutable max_depth : int;
  mutable live_total : float;     (* Σ live over all record_live samples *)
  mutable live_lanes_total : float;  (* Σ lanes over the same samples *)
  mutable live_samples : int;
  gauge : gauge;
}

let create_gauge () =
  {
    width = 1;
    used = 0;
    fill = 0;
    live_sum = Array.make gauge_buckets 0.;
    lanes_sum = Array.make gauge_buckets 0.;
  }

let reset_gauge g =
  g.width <- 1;
  g.used <- 0;
  g.fill <- 0;
  Array.fill g.live_sum 0 gauge_buckets 0.;
  Array.fill g.lanes_sum 0 gauge_buckets 0.

let create () =
  {
    prims = Hashtbl.create 32;
    per_block = Hashtbl.create 64;
    blocks = 0;
    active_total = 0;
    batch_total = 0;
    pushes = 0;
    pops = 0;
    push_lanes = 0;
    pop_lanes = 0;
    max_depth = 0;
    live_total = 0.;
    live_lanes_total = 0.;
    live_samples = 0;
    gauge = create_gauge ();
  }

let reset t =
  Hashtbl.reset t.prims;
  Hashtbl.reset t.per_block;
  t.blocks <- 0;
  t.active_total <- 0;
  t.batch_total <- 0;
  t.pushes <- 0;
  t.pops <- 0;
  t.push_lanes <- 0;
  t.pop_lanes <- 0;
  t.max_depth <- 0;
  t.live_total <- 0.;
  t.live_lanes_total <- 0.;
  t.live_samples <- 0;
  reset_gauge t.gauge

let merge ~into src =
  Hashtbl.iter
    (fun name (s : prim_stats) ->
      match Hashtbl.find_opt into.prims name with
      | Some d ->
        d.useful <- d.useful + s.useful;
        d.issued <- d.issued + s.issued
      | None -> Hashtbl.add into.prims name { useful = s.useful; issued = s.issued })
    src.prims;
  Hashtbl.iter
    (fun b (s : block_stats) ->
      match Hashtbl.find_opt into.per_block b with
      | Some d ->
        d.execs <- d.execs + s.execs;
        d.active <- d.active + s.active
      | None -> Hashtbl.add into.per_block b { execs = s.execs; active = s.active })
    src.per_block;
  into.blocks <- into.blocks + src.blocks;
  into.active_total <- into.active_total + src.active_total;
  into.batch_total <- into.batch_total + src.batch_total;
  into.pushes <- into.pushes + src.pushes;
  into.pops <- into.pops + src.pops;
  into.push_lanes <- into.push_lanes + src.push_lanes;
  into.pop_lanes <- into.pop_lanes + src.pop_lanes;
  if src.max_depth > into.max_depth then into.max_depth <- src.max_depth;
  (* Aggregate occupancy merges exactly; the time series does not (shards
     run on independent step axes), so [into] keeps its own gauge. *)
  into.live_total <- into.live_total +. src.live_total;
  into.live_lanes_total <- into.live_lanes_total +. src.live_lanes_total;
  into.live_samples <- into.live_samples + src.live_samples

type image = {
  i_prims : (string * int * int) list;      (* name, useful, issued *)
  i_per_block : (int * int * int) list;     (* block, execs, active *)
  i_blocks : int;
  i_active_total : int;
  i_batch_total : int;
  i_pushes : int;
  i_pops : int;
  i_push_lanes : int;
  i_pop_lanes : int;
  i_max_depth : int;
  i_live_total : float;
  i_live_lanes_total : float;
  i_live_samples : int;
  i_gauge_width : int;
  i_gauge_used : int;
  i_gauge_fill : int;
  i_gauge_live : float array;
  i_gauge_lanes : float array;
}

let capture t =
  {
    (* Key order, so images of equal states are structurally equal. *)
    i_prims =
      Hashtbl.fold (fun k (s : prim_stats) acc -> (k, s.useful, s.issued) :: acc)
        t.prims []
      |> List.sort compare;
    i_per_block =
      Hashtbl.fold (fun b (s : block_stats) acc -> (b, s.execs, s.active) :: acc)
        t.per_block []
      |> List.sort compare;
    i_blocks = t.blocks;
    i_active_total = t.active_total;
    i_batch_total = t.batch_total;
    i_pushes = t.pushes;
    i_pops = t.pops;
    i_push_lanes = t.push_lanes;
    i_pop_lanes = t.pop_lanes;
    i_max_depth = t.max_depth;
    i_live_total = t.live_total;
    i_live_lanes_total = t.live_lanes_total;
    i_live_samples = t.live_samples;
    i_gauge_width = t.gauge.width;
    i_gauge_used = t.gauge.used;
    i_gauge_fill = t.gauge.fill;
    i_gauge_live = Array.sub t.gauge.live_sum 0 gauge_buckets;
    i_gauge_lanes = Array.sub t.gauge.lanes_sum 0 gauge_buckets;
  }

let restore t img =
  if
    Array.length img.i_gauge_live <> gauge_buckets
    || Array.length img.i_gauge_lanes <> gauge_buckets
  then invalid_arg "Instrument.restore: gauge bucket count mismatch";
  reset t;
  List.iter
    (fun (name, useful, issued) -> Hashtbl.replace t.prims name { useful; issued })
    img.i_prims;
  List.iter
    (fun (b, execs, active) -> Hashtbl.replace t.per_block b { execs; active })
    img.i_per_block;
  t.blocks <- img.i_blocks;
  t.active_total <- img.i_active_total;
  t.batch_total <- img.i_batch_total;
  t.pushes <- img.i_pushes;
  t.pops <- img.i_pops;
  t.push_lanes <- img.i_push_lanes;
  t.pop_lanes <- img.i_pop_lanes;
  t.max_depth <- img.i_max_depth;
  t.live_total <- img.i_live_total;
  t.live_lanes_total <- img.i_live_lanes_total;
  t.live_samples <- img.i_live_samples;
  t.gauge.width <- img.i_gauge_width;
  t.gauge.used <- img.i_gauge_used;
  t.gauge.fill <- img.i_gauge_fill;
  Array.blit img.i_gauge_live 0 t.gauge.live_sum 0 gauge_buckets;
  Array.blit img.i_gauge_lanes 0 t.gauge.lanes_sum 0 gauge_buckets

let stats_for t name =
  match Hashtbl.find_opt t.prims name with
  | Some s -> s
  | None ->
    let s = { useful = 0; issued = 0 } in
    Hashtbl.add t.prims name s;
    s

let record_prim t ~name ~useful ~issued =
  let s = stats_for t name in
  s.useful <- s.useful + useful;
  s.issued <- s.issued + issued

let record_block ?block t ~active ~batch =
  t.blocks <- t.blocks + 1;
  t.active_total <- t.active_total + active;
  t.batch_total <- t.batch_total + batch;
  match block with
  | None -> ()
  | Some b ->
    let s =
      match Hashtbl.find_opt t.per_block b with
      | Some s -> s
      | None ->
        let s = { execs = 0; active = 0 } in
        Hashtbl.add t.per_block b s;
        s
    in
    s.execs <- s.execs + 1;
    s.active <- s.active + active

let record_push t ~lanes =
  t.pushes <- t.pushes + 1;
  t.push_lanes <- t.push_lanes + lanes

let record_pop t ~lanes =
  t.pops <- t.pops + 1;
  t.pop_lanes <- t.pop_lanes + lanes

let record_depth t d = if d > t.max_depth then t.max_depth <- d

let gauge_compact g =
  for i = 0 to (gauge_buckets / 2) - 1 do
    g.live_sum.(i) <- g.live_sum.(2 * i) +. g.live_sum.((2 * i) + 1);
    g.lanes_sum.(i) <- g.lanes_sum.(2 * i) +. g.lanes_sum.((2 * i) + 1)
  done;
  Array.fill g.live_sum (gauge_buckets / 2) (gauge_buckets / 2) 0.;
  Array.fill g.lanes_sum (gauge_buckets / 2) (gauge_buckets / 2) 0.;
  g.used <- gauge_buckets / 2;
  g.width <- g.width * 2

let record_live t ~live ~lanes =
  t.live_total <- t.live_total +. float_of_int live;
  t.live_lanes_total <- t.live_lanes_total +. float_of_int lanes;
  t.live_samples <- t.live_samples + 1;
  let g = t.gauge in
  if g.fill = 0 then begin
    if g.used = gauge_buckets then gauge_compact g;
    g.used <- g.used + 1
  end;
  let i = g.used - 1 in
  g.live_sum.(i) <- g.live_sum.(i) +. float_of_int live;
  g.lanes_sum.(i) <- g.lanes_sum.(i) +. float_of_int lanes;
  g.fill <- (g.fill + 1) mod g.width

(* The event-driven door to the gauge: the VMs emit one
   [Obs_sink.Occupancy] per superstep and feed it both to the user sink
   and here, so the gauge and any profiler sink see the same numbers by
   construction (no parallel counting path). *)
let observe_occupancy t ev =
  match ev with
  | Obs_sink.Occupancy { live; total; _ } -> record_live t ~live ~lanes:total
  | _ -> ()

let live_samples t = t.live_samples

let mean_occupancy t =
  if t.live_lanes_total = 0. then 1. else t.live_total /. t.live_lanes_total

let occupancy_series t =
  let g = t.gauge in
  List.init g.used (fun i ->
      let occ = if g.lanes_sum.(i) = 0. then 0. else g.live_sum.(i) /. g.lanes_sum.(i) in
      (i * g.width, occ))

let utilization t ~name =
  match Hashtbl.find_opt t.prims name with
  | None -> None
  | Some s -> if s.issued = 0 then None else Some (float_of_int s.useful /. float_of_int s.issued)

let overall_utilization t =
  if t.batch_total = 0 then 1.
  else float_of_int t.active_total /. float_of_int t.batch_total

let prim_issued t ~name =
  match Hashtbl.find_opt t.prims name with Some s -> s.issued | None -> 0

let prim_useful t ~name =
  match Hashtbl.find_opt t.prims name with Some s -> s.useful | None -> 0

let blocks_executed t = t.blocks

let block_stats t =
  Hashtbl.fold (fun b s acc -> (b, s.execs, s.active) :: acc) t.per_block []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
let pushes t = t.pushes
let pops t = t.pops
let max_depth t = t.max_depth

let pp ppf t =
  Format.fprintf ppf
    "@[<v>blocks %d, overall utilization %.3f, pushes %d, pops %d, max depth %d@,"
    t.blocks (overall_utilization t) t.pushes t.pops t.max_depth;
  let entries =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.prims []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%s: useful %d / issued %d@," name s.useful s.issued)
    entries;
  Format.fprintf ppf "@]"

let to_json t =
  let img = capture t in
  Obs_json.Obj
    [
      ("overall_utilization", Obs_json.Float (overall_utilization t));
      ("mean_occupancy", Obs_json.Float (mean_occupancy t));
      ("blocks_executed", Obs_json.Int img.i_blocks);
      ("pushes", Obs_json.Int img.i_pushes);
      ("pops", Obs_json.Int img.i_pops);
      ("max_depth", Obs_json.Int img.i_max_depth);
      ( "prims",
        Obs_json.Obj
          (List.map
             (fun (name, useful, issued) ->
               ( name,
                 Obs_json.Obj
                   [
                     ("useful", Obs_json.Int useful);
                     ("issued", Obs_json.Int issued);
                     ( "utilization",
                       Obs_json.Float
                         (float_of_int useful /. float_of_int (max 1 issued)) );
                   ] ))
             img.i_prims) );
    ]
