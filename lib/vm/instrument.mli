(** Runtime instrumentation shared by both autobatching VMs.

    The central quantity is per-primitive *batch utilization*: when a
    basic block executes with [useful] active members out of [issued]
    batch slots, every primitive in it does [useful] lanes of useful work
    while occupying [issued] lanes. The paper's Figure 6 is the
    utilization of the model-gradient primitive under the two batching
    strategies. *)

type t

val create : unit -> t
val reset : t -> unit

val merge : into:t -> t -> unit
(** Absorb another instrument's observations (counts sum, max depth takes
    the max). Used to combine the per-shard instruments of a multi-device
    run into one report. *)

val record_prim : t -> name:string -> useful:int -> issued:int -> unit

(** [record_block ?block t ~active ~batch] records one executed block;
    [block] (its index) additionally feeds the per-block profile. *)
val record_block : ?block:int -> t -> active:int -> batch:int -> unit
val record_push : t -> lanes:int -> unit
val record_pop : t -> lanes:int -> unit
val record_depth : t -> int -> unit
(** Observe a stack depth; the maximum is retained. *)

val record_live : t -> live:int -> lanes:int -> unit
(** Observe the live-lane occupancy at one superstep: [live] lanes still
    running out of [lanes] batch slots. Feeds both the aggregate
    {!mean_occupancy} and a bounded {!occupancy_series} time series
    (adjacent samples merge as the run grows, so memory stays constant). *)

val observe_occupancy : t -> Obs_sink.event -> unit
(** Feed one {!Obs_sink.Occupancy} event into the live-lane gauge
    ([record_live ~live ~lanes:total]); every other event is ignored. The
    VMs route their per-superstep occupancy through this so the gauge and
    any attached profiler sink read the same event — there is no separate
    counting path. *)

val utilization : t -> name:string -> float option
(** useful/issued lane fraction for one primitive; [None] if never run. *)

val overall_utilization : t -> float
(** Σ active / Σ batch over all executed blocks (1.0 when never run). *)

val mean_occupancy : t -> float
(** Σ live / Σ lanes over all {!record_live} samples (1.0 when never
    sampled). Distinct from {!overall_utilization}: a lane is *live* until
    it halts, even while waiting out a block it does not execute. *)

val live_samples : t -> int
(** Number of {!record_live} observations. *)

val occupancy_series : t -> (int * float) list
(** The live-lane gauge as [(first_step, mean_occupancy)] buckets in step
    order — at most a few hundred points spanning the whole run. Empty if
    {!record_live} was never called. Not combined by {!merge} (shards run
    on independent step axes); the merge target keeps its own series. *)

val prim_issued : t -> name:string -> int
val prim_useful : t -> name:string -> int
val blocks_executed : t -> int
val pushes : t -> int
val pops : t -> int
val max_depth : t -> int

val block_stats : t -> (int * int * int) list
(** Per-block profile, sorted by execution count descending:
    [(block_index, executions, total_active_lanes)]. Only populated when
    the VM passes [?block] to {!record_block}. *)

(** Plain-data checkpoint of an instrument. Entry lists are sorted by key,
    so images of equal states are structurally equal ([=]); the resilience
    layer relies on this for bitwise-replay verification. *)
type image = {
  i_prims : (string * int * int) list;     (** name, useful, issued *)
  i_per_block : (int * int * int) list;    (** block, execs, active *)
  i_blocks : int;
  i_active_total : int;
  i_batch_total : int;
  i_pushes : int;
  i_pops : int;
  i_push_lanes : int;
  i_pop_lanes : int;
  i_max_depth : int;
  i_live_total : float;
  i_live_lanes_total : float;
  i_live_samples : int;
  i_gauge_width : int;
  i_gauge_used : int;
  i_gauge_fill : int;
  i_gauge_live : float array;
  i_gauge_lanes : float array;
}

val capture : t -> image

val restore : t -> image -> unit
(** Overwrite [t] with the image (counts, per-key tables, occupancy
    gauge), so a recovered run reports statistics from time zero. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs_json.t
(** Machine-readable readout for report documents: overall utilization,
    mean occupancy, block/push/pop/depth totals, and the per-primitive
    useful/issued table. *)
