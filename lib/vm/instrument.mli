(** Runtime instrumentation shared by both autobatching VMs.

    The central quantity is per-primitive *batch utilization*: when a
    basic block executes with [useful] active members out of [issued]
    batch slots, every primitive in it does [useful] lanes of useful work
    while occupying [issued] lanes. The paper's Figure 6 is the
    utilization of the model-gradient primitive under the two batching
    strategies. *)

type t

val create : unit -> t
val reset : t -> unit

val merge : into:t -> t -> unit
(** Absorb another instrument's observations (counts sum, max depth takes
    the max). Used to combine the per-shard instruments of a multi-device
    run into one report. *)

val record_prim : t -> name:string -> useful:int -> issued:int -> unit

(** [record_block ?block t ~active ~batch] records one executed block;
    [block] (its index) additionally feeds the per-block profile. *)
val record_block : ?block:int -> t -> active:int -> batch:int -> unit
val record_push : t -> lanes:int -> unit
val record_pop : t -> lanes:int -> unit
val record_depth : t -> int -> unit
(** Observe a stack depth; the maximum is retained. *)

val utilization : t -> name:string -> float option
(** useful/issued lane fraction for one primitive; [None] if never run. *)

val overall_utilization : t -> float
(** Σ active / Σ batch over all executed blocks (1.0 when never run). *)

val prim_issued : t -> name:string -> int
val prim_useful : t -> name:string -> int
val blocks_executed : t -> int
val pushes : t -> int
val pops : t -> int
val max_depth : t -> int

val block_stats : t -> (int * int * int) list
(** Per-block profile, sorted by execution count descending:
    [(block_index, executions, total_active_lanes)]. Only populated when
    the VM passes [?block] to {!record_block}. *)

val pp : Format.formatter -> t -> unit
