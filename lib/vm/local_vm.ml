type exec_style = Masking | Gather_scatter | Adaptive of float

type config = {
  style : exec_style;
  sched : Sched_policy.t;
  engine : Engine.t option;
  instrument : Instrument.t option;
  max_steps : int;
  member_base : int;
  sink : Obs_sink.t option;
}

let default_config =
  {
    style = Masking;
    sched = Sched_policy.Earliest;
    engine = None;
    instrument = None;
    max_steps = 100_000_000;
    member_base = 0;
    sink = None;
  }

exception Step_limit_exceeded

let batch_size batch =
  match batch with
  | [] -> invalid_arg "Local_vm: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Local_vm: inputs must carry a leading batch dimension";
    let z = (Tensor.shape first).(0) in
    List.iter
      (fun t ->
        if Tensor.rank t = 0 || (Tensor.shape t).(0) <> z then
          invalid_arg "Local_vm: inputs disagree on the batch dimension")
      batch;
    z

let run_active ?(config = default_config) reg (p : Cfg.program) ~batch ~active =
  let z = batch_size batch in
  if Array.length active <> z then
    invalid_arg "Local_vm: active mask length must equal the batch size";
  if Vm_util.count_mask active = 0 then
    invalid_arg "Local_vm: initial active set is empty";
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > config.max_steps then raise Step_limit_exceeded
  in
  (* Function-local cost tables for the table-driven policies, built on
     first entry per function (host recursion re-enters run_function for
     every batched call, so memoization matters). *)
  let tables_cache : (string, Sched_policy.tables) Hashtbl.t = Hashtbl.create 8 in
  let tables_for (f : Cfg.func) =
    if not (Sched_policy.needs_tables config.sched) then None
    else
      Some
        (match Hashtbl.find_opt tables_cache f.Cfg.name with
        | Some tb -> tb
        | None ->
          let tb = Sched_cost.func_tables p ~fn:f.Cfg.name in
          Hashtbl.replace tables_cache f.Cfg.name tb;
          tb)
  in
  let rec run_function (f : Cfg.func) args active =
    let env : (string, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
    if List.length f.Cfg.params <> List.length args then
      invalid_arg (Printf.sprintf "Local_vm: arity mismatch calling %s" f.Cfg.name);
    (* Bind parameters to copies: the frame writes into its variables in
       place, and an argument tensor belongs to the caller (or the user). *)
    List.iter2 (fun x v -> Hashtbl.replace env x (Tensor.copy v)) f.Cfg.params args;
    let nb = Array.length f.Cfg.blocks in
    let pc = Array.make z 0 in
    let counts = Array.make nb 0 in
    let last = ref (-1) in
    (* One batched write of [out] (full-width or gathered per style) into
       variable [dst] for the locally active members. *)
    let write_result style lmask members dst out =
      let full_shape =
        match style with
        | Masking -> Tensor.shape out
        | Gather_scatter -> Shape.concat_outer z (Vm_util.elem_shape_of_batched out)
        | Adaptive _ -> assert false
      in
      let cur =
        match Hashtbl.find_opt env dst with
        | Some cur when Shape.equal (Tensor.shape cur) full_shape -> cur
        | Some cur ->
          invalid_arg
            (Printf.sprintf "Local_vm: variable %s changes shape from %s to %s" dst
               (Shape.to_string (Tensor.shape cur))
               (Shape.to_string full_shape))
        | None ->
          let fresh = Tensor.zeros full_shape in
          Hashtbl.replace env dst fresh;
          fresh
      in
      match style with
      | Masking -> Tensor.blit_rows_masked ~mask:lmask ~src:out ~dst:cur
      | Gather_scatter -> Tensor.blit_rows_indexed ~idx:members ~src:out ~dst:cur
      | Adaptive _ -> assert false
    in
    let lookup v =
      match Hashtbl.find_opt env v with
      | Some t -> t
      | None -> invalid_arg (Printf.sprintf "Local_vm: undefined variable %s" v)
    in
    let rec vm_loop () =
      Array.fill counts 0 nb 0;
      let live = ref 0 in
      for b = 0 to z - 1 do
        if active.(b) && pc.(b) < nb then begin
          counts.(pc.(b)) <- counts.(pc.(b)) + 1;
          incr live
        end
      done;
      match Sched_policy.pick ?tables:(tables_for f) config.sched ~last:!last ~counts with
      | None -> ()
      | Some i ->
        tick ();
        (* Block indices are function-local here; the sink still sees one
           Step per scheduled block, which is what tracing needs. The
           occupancy event counts lanes live in *this* frame: during a
           host-recursion call, lanes outside the call are idle by
           construction, which is exactly the waste the profiler should
           see. *)
        (match (config.sink, config.instrument) with
        | None, None -> ()
        | sink, instrument ->
          let occ =
            Obs_sink.Occupancy
              {
                shard = 0;
                step = !steps;
                block = i;
                active = counts.(i);
                live = !live;
                total = z;
              }
          in
          (match sink with
          | None -> ()
          | Some sink ->
            sink (Obs_sink.Step { shard = 0; step = !steps; block = i });
            sink occ);
          Option.iter
            (fun ins -> Instrument.observe_occupancy ins occ)
            instrument);
        last := i;
        let lmask = Array.init z (fun b -> active.(b) && pc.(b) = i) in
        let members = Vm_util.indices_of_mask lmask in
        let n_active = Array.length members in
        let charged_ops = ref [] in
        let traffic = ref 0. in
        (* Resolve the adaptive style per block from this block's
           occupancy; the rest of the step sees a concrete style. *)
        let style =
          match config.style with
          | (Masking | Gather_scatter) as s -> s
          | Adaptive threshold ->
            if float_of_int n_active < threshold *. float_of_int z then
              Gather_scatter
            else Masking
        in
        let lanes = match style with
          | Masking -> z
          | Gather_scatter -> n_active
          | Adaptive _ -> assert false
        in
        let charge_write row =
          traffic :=
            !traffic
            +.
            match style with
            | Masking -> Vm_util.masked_write_bytes ~lanes:z ~row
            | Gather_scatter -> Vm_util.stack_move_bytes ~lanes:n_active ~row
            | Adaptive _ -> assert false
        in
        let record_prim name =
          Option.iter
            (fun ins -> Instrument.record_prim ins ~name ~useful:n_active ~issued:lanes)
            config.instrument
        in
        let block = f.Cfg.blocks.(i) in
        List.iter
          (fun (op : Cfg.op) ->
            match op with
            | Cfg.Prim_op { dst; prim; args } ->
              let impl = Prim.find_exn reg prim in
              let arg_tensors =
                match style with
                | Masking -> List.map lookup args
                | Adaptive _ -> assert false
                | Gather_scatter ->
                  List.iter
                    (fun a ->
                      traffic :=
                        !traffic
                        +. Vm_util.stack_move_bytes ~lanes:n_active
                             ~row:(Tensor.row_numel (lookup a)))
                    args;
                  List.map (fun a -> Tensor.take_rows (lookup a) members) args
              in
              (* Global member identities for the RNG primitives; row
                 gathers/scatters below keep using the local [members]. *)
              let row_members =
                match style with
                | Masking -> Array.init z (fun b -> config.member_base + b)
                | Gather_scatter ->
                  if config.member_base = 0 then members
                  else Array.map (fun b -> config.member_base + b) members
                | Adaptive _ -> assert false
              in
              let out = impl.Prim.batched ~members:row_members arg_tensors in
              let elem_shapes = List.map Vm_util.elem_shape_of_batched arg_tensors in
              charged_ops :=
                (prim, impl.Prim.flops elem_shapes *. float_of_int lanes) :: !charged_ops;
              record_prim prim;
              charge_write (Tensor.row_numel out);
              write_result style lmask members dst out
            | Cfg.Const_op { dst; value } ->
              let out =
                match style with
                | Masking -> Tensor.broadcast_rows value z
                | Gather_scatter -> Tensor.broadcast_rows value n_active
                | Adaptive _ -> assert false
              in
              charged_ops :=
                ("const", float_of_int (Tensor.numel value * lanes)) :: !charged_ops;
              charge_write (Tensor.numel value);
              write_result style lmask members dst out
            | Cfg.Mov { dst; src } ->
              let out =
                match style with
                | Masking -> lookup src
                | Gather_scatter -> Tensor.take_rows (lookup src) members
                | Adaptive _ -> assert false
              in
              charged_ops :=
                ("mov", float_of_int (Tensor.row_numel out * lanes)) :: !charged_ops;
              charge_write (Tensor.row_numel out);
              write_result style lmask members dst out
            | Cfg.Call_op { dsts; func; args } ->
              let callee = Cfg.find_func_exn p func in
              Option.iter Engine.charge_host_call config.engine;
              let arg_tensors = List.map lookup args in
              let results = run_function callee arg_tensors lmask in
              List.iter2
                (fun dst out ->
                  charge_write (Tensor.row_numel out);
                  write_result style lmask members dst
                    (match style with
                    | Masking -> out
                    | Gather_scatter -> Tensor.take_rows out members
                    | Adaptive _ -> assert false))
                dsts results)
          block.Cfg.ops;
        (* Terminator: update the locally active members' program counters. *)
        let control_ops = ref 1 in
        (match block.Cfg.term with
        | Cfg.Jump j -> Array.iter (fun b -> pc.(b) <- j) members
        | Cfg.Branch { cond; if_true; if_false } ->
          incr control_ops;
          let cv = lookup cond in
          let data = Tensor.data cv in
          Array.iter
            (fun b -> pc.(b) <- (if data.(b) <> 0. then if_true else if_false))
            members
        | Cfg.Return -> Array.iter (fun b -> pc.(b) <- nb) members);
        Option.iter
          (fun eng ->
            Engine.charge_block eng ~ops:(List.rev !charged_ops)
              ~control_ops:!control_ops ~traffic_bytes:!traffic)
          config.engine;
        (* Per-block profiling keys on the function-local block index;
           the merged PC program's profile is the one with global ids. *)
        Option.iter
          (fun ins -> Instrument.record_block ~block:i ins ~active:n_active ~batch:z)
          config.instrument;
        vm_loop ()
    in
    vm_loop ();
    List.map lookup f.Cfg.result_vars
  in
  run_function (Cfg.entry_func p) batch active

let run ?config reg p ~batch =
  let z = batch_size batch in
  run_active ?config reg p ~batch ~active:(Array.make z true)
