(** Local static autobatching — the paper's Algorithm 1.

    Executes a CFG program on a whole batch at once, maintaining an active
    set and one program counter per batch member. At each step the
    scheduler picks a basic block with at least one active member, runs it
    in batch, and updates only the locally active members' state and
    program counters. [Call] operations recurse through the host (OCaml)
    call stack, exactly as the paper's system recurses through Python —
    which is why this strategy cannot batch across recursion depths and
    must charge host call overhead to the engine.

    Two primitive-execution styles implement the paper's "first free
    choice": [Masking] computes every batch lane and discards inactive
    results (cheap bookkeeping, wasted arithmetic, junk-lane hazards);
    [Gather_scatter] compacts active lanes before computing (no waste,
    but gather/scatter traffic and dynamic intermediate shapes). *)

type exec_style =
  | Masking
  | Gather_scatter
  | Adaptive of float
      (** switch per block: gather/scatter when the active fraction is
          below the threshold, masking otherwise — spend gather traffic
          only when it saves real arithmetic *)

type config = {
  style : exec_style;
  sched : Sched_policy.t;
  engine : Engine.t option;        (** simulated-cost accounting *)
  instrument : Instrument.t option;
  max_steps : int;                 (** bound on VM scheduling steps *)
  member_base : int;
      (** Global index of lane 0, for sharded execution: lane [i] draws
          the RNG streams of batch member [member_base + i]. Default 0. *)
  sink : Obs_sink.t option;
      (** Observability seam: one [Obs_sink.Step] per scheduled block
          (block indices are function-local). A sink that raises aborts
          the step. Default [None]. *)
}

val default_config : config
(** Masking, earliest-block, no engine, no instrumentation, 10^8 steps. *)

exception Step_limit_exceeded

val run :
  ?config:config ->
  Prim.registry ->
  Cfg.program ->
  batch:Tensor.t list ->
  Tensor.t list
(** [run reg p ~batch] executes the entry function on inputs that all
    carry a leading batch dimension of a common size [z]; the results do
    too. All members are initially active. *)

val run_active :
  ?config:config ->
  Prim.registry ->
  Cfg.program ->
  batch:Tensor.t list ->
  active:bool array ->
  Tensor.t list
(** As {!run} but with an explicit initial active set; inactive members'
    output rows are unspecified. *)
