exception Step_limit_exceeded

type storage = Reg of Tensor.t ref | Msk of Tensor.t ref | Stk of Stacked.t

(* The program-counter stack, embedded so the executor is reusable. *)
type pc_stack = {
  mutable cap : int;
  mutable data : int array;
  sp : int array;
  top : int array;
}

type block_exec = {
  ops : (unit -> unit) array;
  (* Static cost-model charges for one execution of this block. *)
  static_ops : (string * float) list;
  prim_names : string list;
  control_ops : int;
  static_traffic : float;
  push_lanes : int;  (* stack pushes in this block (for instrumentation) *)
  pop_lanes : int;
  term : unit -> unit;
}

type t = {
  z : int;
  halt : int;
  store : (string, storage) Hashtbl.t;
  stacks : Stacked.t list;
  inputs : string list;
  outputs : string list;
  mask : bool array;
  members : int array ref;  (* indices of the active members this step *)
  pc : pc_stack;
  blocks : block_exec array;
  tables : Sched_policy.tables;  (* for the table-driven policies *)
  counts : int array;        (* per-block live-lane tallies, scratch *)
  mutable last : int;        (* scheduler cursor *)
  mutable steps : int;
}

let pc_grow pc z =
  let cap' = pc.cap * 2 in
  let data' = Array.make (cap' * z) 0 in
  Array.blit pc.data 0 data' 0 (pc.cap * z);
  pc.cap <- cap';
  pc.data <- data'

let compile reg (p : Stack_ir.program) ~batch =
  let z = batch in
  if z <= 0 then invalid_arg "Pc_jit.compile: batch size must be positive";
  let halt = Stack_ir.halt p in
  let store = Hashtbl.create 64 in
  let stacks = ref [] in
  let shape_of v =
    match Ir_util.Smap.find_opt v p.Stack_ir.shapes with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf
           "Pc_jit.compile: no inferred shape for %s — compile the program with \
            input_shapes"
           v)
  in
  let storage_of v =
    match Hashtbl.find_opt store v with
    | Some s -> s
    | None ->
      let elem = shape_of v in
      let s =
        match Stack_ir.class_of p v with
        | Var_class.Temp -> Reg (ref (Tensor.zeros (Shape.concat_outer z elem)))
        | Var_class.Masked -> Msk (ref (Tensor.zeros (Shape.concat_outer z elem)))
        | Var_class.Stacked ->
          let st = Stacked.create ~z ~elem () in
          stacks := st :: !stacks;
          Stk st
      in
      Hashtbl.add store v s;
      s
  in
  let mask = Array.make z false in
  let members = ref (Vm_util.all_members z) in
  let all = Vm_util.all_members z in
  let reader v =
    match storage_of v with
    | Reg r | Msk r -> fun () -> !r
    | Stk s -> fun () -> Stacked.top s
  in
  (* A writer returns the bookkeeping bytes its class moves per write. *)
  let writer v =
    let row = Shape.numel (shape_of v) in
    match storage_of v with
    | Reg r ->
      ( (fun out -> Array.blit (Tensor.data out) 0 (Tensor.data !r) 0 (Tensor.numel out)),
        Vm_util.bytes_per_elem *. float_of_int (z * row) )
    | Msk r ->
      ( (fun out -> Tensor.blit_rows_masked ~mask ~src:out ~dst:!r),
        Vm_util.masked_write_bytes ~lanes:z ~row )
    | Stk s ->
      ( (fun out -> Stacked.write_top_masked s ~mask out),
        Vm_util.masked_write_bytes ~lanes:z ~row )
  in
  let pc =
    { cap = 8; data = Array.make (8 * z) 0; sp = Array.make z 0; top = Array.make z 0 }
  in
  let compile_block i (b : Stack_ir.block) =
    let ops = ref [] in
    let static_ops = ref [] in
    let prim_names = ref [] in
    let traffic = ref 0. in
    let push_lanes = ref 0 and pop_lanes = ref 0 in
    List.iter
      (fun (op : Stack_ir.op) ->
        match op with
        | Stack_ir.Sprim { dst; prim; args } ->
          let impl = Prim.find_exn reg prim in
          let readers = List.map reader args in
          let write, bytes = writer dst in
          let batched = impl.Prim.batched in
          ops := (fun () -> write (batched ~members:all (List.map (fun f -> f ()) readers))) :: !ops;
          let elem_shapes = List.map shape_of args in
          static_ops :=
            (prim, impl.Prim.flops elem_shapes *. float_of_int z) :: !static_ops;
          prim_names := prim :: !prim_names;
          traffic := !traffic +. bytes
        | Stack_ir.Sconst { dst; value } ->
          (* The broadcast constant is computed once, at compile time. *)
          let const = Tensor.broadcast_rows value z in
          let write, bytes = writer dst in
          ops := (fun () -> write const) :: !ops;
          static_ops := ("const", float_of_int (Tensor.numel const)) :: !static_ops;
          traffic := !traffic +. bytes
        | Stack_ir.Smov { dst; src } ->
          let read = reader src in
          let write, bytes = writer dst in
          ops := (fun () -> write (read ())) :: !ops;
          static_ops :=
            ("mov", float_of_int (z * Shape.numel (shape_of src))) :: !static_ops;
          traffic := !traffic +. bytes
        | Stack_ir.Spush v -> (
          match storage_of v with
          | Stk s ->
            ops := (fun () -> Stacked.push s ~mask) :: !ops;
            traffic := !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
            incr push_lanes
          | Reg _ | Msk _ ->
            invalid_arg (Printf.sprintf "Pc_jit: push of non-stacked variable %s" v))
        | Stack_ir.Spop v -> (
          match storage_of v with
          | Stk s ->
            ops := (fun () -> Stacked.pop s ~mask) :: !ops;
            traffic := !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
            incr pop_lanes
          | Reg _ | Msk _ ->
            invalid_arg (Printf.sprintf "Pc_jit: pop of non-stacked variable %s" v)))
      b.Stack_ir.ops;
    let set_top v =
      Array.iter (fun b -> pc.top.(b) <- v) !members
    in
    let control_ops, term, term_traffic =
      match b.Stack_ir.term with
      | Stack_ir.Sjump j -> (2, (fun () -> set_top j), 0.)
      | Stack_ir.Sbranch { cond; if_true; if_false } ->
        let read = reader cond in
        ( 3,
          (fun () ->
            let data = Tensor.data (read ()) in
            Array.iter
              (fun b -> pc.top.(b) <- (if data.(b) <> 0. then if_true else if_false))
              !members),
          0. )
      | Stack_ir.Spushjump { ret; entry } ->
        ( 2,
          (fun () ->
            Array.iter
              (fun b ->
                if pc.sp.(b) >= pc.cap then pc_grow pc z;
                pc.data.((pc.sp.(b) * z) + b) <- ret;
                pc.sp.(b) <- pc.sp.(b) + 1;
                pc.top.(b) <- entry)
              !members),
          Vm_util.stack_move_bytes ~lanes:z ~row:1 )
      | Stack_ir.Spushbranch { ret; cond; if_true; if_false } ->
        let read = reader cond in
        ( 3,
          (fun () ->
            let data = Tensor.data (read ()) in
            Array.iter
              (fun b ->
                if pc.sp.(b) >= pc.cap then pc_grow pc z;
                pc.data.((pc.sp.(b) * z) + b) <- ret;
                pc.sp.(b) <- pc.sp.(b) + 1;
                pc.top.(b) <- (if data.(b) <> 0. then if_true else if_false))
              !members),
          Vm_util.stack_move_bytes ~lanes:z ~row:1 )
      | Stack_ir.Sreturn ->
        ( 2,
          (fun () ->
            Array.iter
              (fun b ->
                pc.sp.(b) <- pc.sp.(b) - 1;
                pc.top.(b) <- pc.data.((pc.sp.(b) * z) + b))
              !members),
          Vm_util.stack_move_bytes ~lanes:z ~row:1 )
    in
    ignore i;
    {
      ops = Array.of_list (List.rev !ops);
      static_ops = List.rev !static_ops;
      prim_names = List.rev !prim_names;
      control_ops;
      static_traffic = !traffic +. term_traffic;
      push_lanes = !push_lanes;
      pop_lanes = !pop_lanes;
      term;
    }
  in
  (* Force allocation of every program variable up front so missing shapes
     fail at compile time, then compile blocks. *)
  List.iter (fun v -> ignore (storage_of v)) (Stack_ir.all_vars p);
  let blocks = Array.mapi compile_block p.Stack_ir.blocks in
  {
    z;
    halt;
    store;
    stacks = !stacks;
    inputs = p.Stack_ir.inputs;
    outputs = p.Stack_ir.outputs;
    mask;
    members;
    pc;
    blocks;
    (* Cost tables are static per program; computing them once here keeps
       the per-step pick allocation-free under every policy. *)
    tables = Sched_cost.stack_tables ~registry:reg p;
    counts = Array.make (Array.length blocks) 0;
    last = -1;
    steps = 0;
  }

let reset t =
  List.iter Stacked.reset t.stacks;
  Array.fill t.pc.sp 0 t.z 1;
  Array.fill t.pc.top 0 t.z 0;
  for b = 0 to t.z - 1 do
    t.pc.data.(b) <- t.halt
  done;
  Hashtbl.iter
    (fun _ s ->
      match s with
      | Reg r | Msk r -> Array.fill (Tensor.data !r) 0 (Tensor.numel !r) 0.
      | Stk _ -> ())
    t.store

let load t ~batch =
  if List.length batch <> List.length t.inputs then
    invalid_arg "Pc_jit.load: input count mismatch";
  List.iter
    (fun inp ->
      if Tensor.rank inp = 0 || (Tensor.shape inp).(0) <> t.z then
        invalid_arg "Pc_jit.load: inputs must have the compiled batch dimension")
    batch;
  reset t;
  Array.fill t.mask 0 t.z true;
  t.members := Vm_util.all_members t.z;
  List.iter2
    (fun v inp ->
      match Hashtbl.find t.store v with
      | Reg r | Msk r ->
        Array.blit (Tensor.data inp) 0 (Tensor.data !r) 0 (Tensor.numel inp)
      | Stk s -> Stacked.write_top_masked s ~mask:t.mask inp)
    t.inputs batch;
  t.last <- -1;
  t.steps <- 0

let steps t = t.steps

let step ?(sched = Sched_policy.Earliest) ?engine ?instrument ?sink
    ?(max_steps = 100_000_000) t =
  let nb = Array.length t.blocks in
  Array.fill t.counts 0 nb 0;
  let live = ref 0 in
  for b = 0 to t.z - 1 do
    if t.pc.top.(b) < t.halt then begin
      t.counts.(t.pc.top.(b)) <- t.counts.(t.pc.top.(b)) + 1;
      incr live
    end
  done;
  match Sched_policy.pick ~tables:t.tables sched ~last:t.last ~counts:t.counts with
  | None -> false
  | Some i ->
    t.steps <- t.steps + 1;
    if t.steps > max_steps then raise Step_limit_exceeded;
    (* As in Pc_vm: the Step and Occupancy events fire before the block
       executes, so a raising sink aborts the superstep with no effects
       applied; the occupancy event also feeds the live-lane gauge. *)
    (match ((sink : Obs_sink.t option), instrument) with
    | None, None -> ()
    | sink, instrument ->
      let occ =
        Obs_sink.Occupancy
          {
            shard = 0;
            step = t.steps;
            block = i;
            active = t.counts.(i);
            live = !live;
            total = t.z;
          }
      in
      (match sink with
      | None -> ()
      | Some sink ->
        sink (Obs_sink.Step { shard = 0; step = t.steps; block = i });
        sink occ);
      Option.iter
        (fun ins -> Instrument.observe_occupancy ins occ)
        instrument);
    t.last <- i;
    let n_active = ref 0 in
    for b = 0 to t.z - 1 do
      let m = t.pc.top.(b) = i in
      t.mask.(b) <- m;
      if m then incr n_active
    done;
    t.members := Vm_util.indices_of_mask t.mask;
    let blk = t.blocks.(i) in
    Array.iter (fun f -> f ()) blk.ops;
    blk.term ();
    (match engine with
    | Some eng ->
      Engine.charge_block eng ~ops:blk.static_ops ~control_ops:blk.control_ops
        ~traffic_bytes:blk.static_traffic
    | None -> ());
    (match instrument with
    | Some ins ->
      List.iter
        (fun name -> Instrument.record_prim ins ~name ~useful:!n_active ~issued:t.z)
        blk.prim_names;
      for _ = 1 to blk.push_lanes do
        Instrument.record_push ins ~lanes:!n_active
      done;
      for _ = 1 to blk.pop_lanes do
        Instrument.record_pop ins ~lanes:!n_active
      done;
      Instrument.record_block ~block:i ins ~active:!n_active ~batch:t.z
    | None -> ());
    true

let outputs t =
  List.map
    (fun v ->
      match Hashtbl.find t.store v with
      | Reg r | Msk r -> Tensor.copy !r
      | Stk s -> Tensor.copy (Stacked.top s))
    t.outputs

let run ?sched ?engine ?instrument ?sink ?max_steps t ~batch =
  load t ~batch;
  while step ?sched ?engine ?instrument ?sink ?max_steps t do
    ()
  done;
  outputs t

type image = {
  ji_z : int;
  ji_steps : int;
  ji_last : int;
  ji_pc : Vm_image.pc;
  ji_store : Vm_image.store;
}

let capture t =
  let store =
    Hashtbl.fold
      (fun v s acc ->
        let img =
          match s with
          | Reg r ->
            Vm_image.Reg (Array.copy (Tensor.shape !r), Array.copy (Tensor.data !r))
          | Msk r ->
            Vm_image.Msk (Array.copy (Tensor.shape !r), Array.copy (Tensor.data !r))
          | Stk s -> Vm_image.Stk (Stacked.capture s)
        in
        (v, img) :: acc)
      t.store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    ji_z = t.z;
    ji_steps = t.steps;
    ji_last = t.last;
    ji_pc =
      {
        Vm_image.pc_cap = t.pc.cap;
        pc_data = Array.copy t.pc.data;
        pc_sp = Array.copy t.pc.sp;
        pc_top = Array.copy t.pc.top;
      };
    ji_store = store;
  }

(* Restore mutates storage in place: the compiled block closures captured
   the [Tensor.t ref]s and [Stacked.t]s at compile time, so the executor's
   buffers must keep their identity — only their contents change. Every
   program variable is preallocated at compile time, so the image (captured
   from an executor of the same program) covers the whole store. *)
let restore t img =
  if img.ji_z <> t.z then invalid_arg "Pc_jit.restore: batch size mismatch";
  if Array.length img.ji_pc.Vm_image.pc_data <> img.ji_pc.Vm_image.pc_cap * t.z then
    invalid_arg "Pc_jit.restore: pc data length disagrees with capacity";
  t.steps <- img.ji_steps;
  t.last <- img.ji_last;
  t.pc.cap <- img.ji_pc.Vm_image.pc_cap;
  t.pc.data <- Array.copy img.ji_pc.Vm_image.pc_data;
  Array.blit img.ji_pc.Vm_image.pc_sp 0 t.pc.sp 0 t.z;
  Array.blit img.ji_pc.Vm_image.pc_top 0 t.pc.top 0 t.z;
  List.iter
    (fun (v, s) ->
      match (Hashtbl.find_opt t.store v, s) with
      | Some (Reg r), Vm_image.Reg (shape, data)
      | Some (Msk r), Vm_image.Msk (shape, data) ->
        if not (Shape.equal shape (Tensor.shape !r)) then
          invalid_arg
            (Printf.sprintf "Pc_jit.restore: variable %s changes shape" v);
        Array.blit data 0 (Tensor.data !r) 0 (Array.length data)
      | Some (Stk s'), Vm_image.Stk simg -> Stacked.restore s' simg
      | Some _, _ ->
        invalid_arg
          (Printf.sprintf "Pc_jit.restore: variable %s changes storage class" v)
      | None, _ ->
        invalid_arg (Printf.sprintf "Pc_jit.restore: unknown variable %s" v))
    img.ji_store
