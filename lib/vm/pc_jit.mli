(** Program-counter autobatching with precompiled blocks.

    Semantically identical to {!Pc_vm} (Algorithm 2), but the interpreter
    work is done once, ahead of time — the analogue of handing the whole
    runtime to XLA instead of walking the program step by step:

    - every variable's storage is resolved and preallocated (static
      element shapes are required, as on the paper's target platforms);
    - every primitive is looked up once and closed over its storage;
    - every block becomes one OCaml closure; per-block cost-model charges
      (flops, op names, control counts) are precomputed constants.

    The scheduling loop, masking semantics, scheduling heuristic and all
    results are bitwise identical to {!Pc_vm}; only the host-side dispatch
    overhead changes (measured in [bench/main.exe micro]). *)

type t

val compile : Prim.registry -> Stack_ir.program -> batch:int -> t
(** Prepare a reusable executor for a fixed batch size. Raises
    [Invalid_argument] if the program lacks inferred shapes for some
    variable (compile the program with [input_shapes]). *)

val run :
  ?sched:Sched_policy.t ->
  ?engine:Engine.t ->
  ?instrument:Instrument.t ->
  ?sink:Obs_sink.t ->
  ?max_steps:int ->
  t ->
  batch:Tensor.t list ->
  Tensor.t list
(** Execute on inputs whose batch dimension matches [compile]'s. The
    executor is reusable: storage is reset from the inputs each run.
    Equivalent to {!load} followed by {!step} until it returns [false],
    then {!outputs}. *)

val load : t -> batch:Tensor.t list -> unit
(** Reset all storage and load a fresh batch, ready to {!step}. *)

val step :
  ?sched:Sched_policy.t ->
  ?engine:Engine.t ->
  ?instrument:Instrument.t ->
  ?sink:Obs_sink.t ->
  ?max_steps:int ->
  t ->
  bool
(** Execute one scheduled basic block; [false] when every member has
    halted. Pass the same optional arguments on every call of a run.
    [sink] receives one [Obs_sink.Step] per superstep, before the block
    executes (as in {!Pc_vm.config}); a raising sink aborts the step.
    Raises {!Step_limit_exceeded} past [max_steps]. *)

val outputs : t -> Tensor.t list
(** The output tensors (freshly copied) in program order. *)

val steps : t -> int
(** Supersteps executed since the last {!load}. *)

(** Plain-data checkpoint of the executor's mutable state (step count,
    scheduler cursor, pc stack, every variable — sorted by name, so images
    of equal states are structurally equal). The compiled closures are not
    part of the image: capture and restore on executors compiled from the
    same program at the same batch size. *)
type image = {
  ji_z : int;
  ji_steps : int;
  ji_last : int;
  ji_pc : Vm_image.pc;
  ji_store : Vm_image.store;
}

val capture : t -> image

val restore : t -> image -> unit
(** Overwrite the executor's state in place (buffer identity is preserved
    — the compiled closures hold references into them). Raises
    [Invalid_argument] on batch-size, shape, or storage-class mismatch. *)

exception Step_limit_exceeded
