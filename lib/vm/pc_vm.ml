type config = {
  sched : Sched_policy.t;
  engine : Engine.t option;
  instrument : Instrument.t option;
  max_steps : int;
  initial_depth : int;
  top_cache : bool;
  naive_stack_writes : bool;
  member_base : int;
  sink : Obs_sink.t option;
}

let default_config =
  {
    sched = Sched_policy.Earliest;
    engine = None;
    instrument = None;
    max_steps = 100_000_000;
    initial_depth = 4;
    top_cache = true;
    naive_stack_writes = false;
    member_base = 0;
    sink = None;
  }

exception Step_limit_exceeded

(* The program-counter stack: same layout as Stacked but over ints. *)
module Pc_stack = struct
  type t = {
    z : int;
    mutable cap : int;
    mutable data : int array;
    sp : int array;
    top : int array;
  }

  let create ~z ~bottom ~start ~initial_depth =
    let cap = max 1 initial_depth in
    let t =
      { z; cap; data = Array.make (cap * z) 0; sp = Array.make z 1; top = Array.make z start }
    in
    for b = 0 to z - 1 do
      t.data.(b) <- bottom
    done;
    t

  let grow t =
    let cap' = t.cap * 2 in
    let data' = Array.make (cap' * t.z) 0 in
    Array.blit t.data 0 data' 0 (t.cap * t.z);
    t.cap <- cap';
    t.data <- data'

  let push t ~mask =
    let need = ref 0 in
    Array.iteri (fun b m -> if m && t.sp.(b) >= !need then need := t.sp.(b) + 1) mask;
    while !need > t.cap do
      grow t
    done;
    Array.iteri
      (fun b m ->
        if m then begin
          t.data.((t.sp.(b) * t.z) + b) <- t.top.(b);
          t.sp.(b) <- t.sp.(b) + 1
        end)
      mask

  let pop t ~mask =
    Array.iteri
      (fun b m ->
        if m then begin
          if t.sp.(b) = 0 then
            invalid_arg (Printf.sprintf "Pc_vm: pc stack underflow for member %d" b);
          t.sp.(b) <- t.sp.(b) - 1;
          t.top.(b) <- t.data.((t.sp.(b) * t.z) + b)
        end)
      mask

  let set_top_masked t ~mask v =
    Array.iteri (fun b m -> if m then t.top.(b) <- v) mask

  let reset_lane t ~lane ~bottom ~start =
    if lane < 0 || lane >= t.z then invalid_arg "Pc_stack.reset_lane: lane out of range";
    t.sp.(lane) <- 1;
    t.data.(lane) <- bottom;
    t.top.(lane) <- start

  let max_depth t = Array.fold_left max 0 t.sp

  (* One member's pc column: stack entries below sp (bottom first, the
     halt sentinel included) plus the cached top. *)
  type lane = { pl_sp : int; pl_stack : int array; pl_top : int }

  let capture_lane t ~lane =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_stack.capture_lane: lane out of range";
    {
      pl_sp = t.sp.(lane);
      pl_stack = Array.init t.sp.(lane) (fun d -> t.data.((d * t.z) + lane));
      pl_top = t.top.(lane);
    }

  let restore_lane t ~lane l =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_stack.restore_lane: lane out of range";
    while l.pl_sp > t.cap do
      grow t
    done;
    t.sp.(lane) <- l.pl_sp;
    Array.iteri (fun d v -> t.data.((d * t.z) + lane) <- v) l.pl_stack;
    t.top.(lane) <- l.pl_top

  let capture t =
    {
      Vm_image.pc_cap = t.cap;
      pc_data = Array.copy t.data;
      pc_sp = Array.copy t.sp;
      pc_top = Array.copy t.top;
    }

  let restore t (img : Vm_image.pc) =
    if Array.length img.Vm_image.pc_sp <> t.z then
      invalid_arg "Pc_stack.restore: batch size mismatch";
    if Array.length img.Vm_image.pc_data <> img.Vm_image.pc_cap * t.z then
      invalid_arg "Pc_stack.restore: pc data length disagrees with capacity";
    t.cap <- img.Vm_image.pc_cap;
    t.data <- Array.copy img.Vm_image.pc_data;
    Array.blit img.Vm_image.pc_sp 0 t.sp 0 t.z;
    Array.blit img.Vm_image.pc_top 0 t.top 0 t.z
end

type storage = Reg of Tensor.t ref | Msk of Tensor.t ref | Stk of Stacked.t

let batch_size batch =
  match batch with
  | [] -> invalid_arg "Pc_vm: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Pc_vm: inputs must carry a leading batch dimension";
    let z = (Tensor.shape first).(0) in
    List.iter
      (fun t ->
        if Tensor.rank t = 0 || (Tensor.shape t).(0) <> z then
          invalid_arg "Pc_vm: inputs disagree on the batch dimension")
      batch;
    z

(* The steppable lane pool: all of the program-counter VM's state, with
   per-lane occupancy so a serving layer can retire a halted lane and
   refill it with a new request mid-run. [run] below is the classic
   whole-batch entry point, now a thin driver over this engine. *)
module Lanes = struct
  type t = {
    config : config;
    reg : Prim.registry;
    p : Stack_ir.program;
    z : int;
    halt : int;
    nb : int;
    store : (string, storage) Hashtbl.t;
    pc : Pc_stack.t;
    members : int array;     (* per-lane global RNG member identity *)
    occupied : bool array;   (* lane currently carries a request *)
    counts : int array;
    tables : Sched_policy.tables option;  (* for the table-driven policies *)
    mutable last : int;
    mutable steps : int;
    mutable traffic : float;
    mutable charged_ops : (string * float) list;
  }

  let allocate t v elem =
    let s =
      match Stack_ir.class_of t.p v with
      | Var_class.Temp -> Reg (ref (Tensor.zeros (Shape.concat_outer t.z elem)))
      | Var_class.Masked -> Msk (ref (Tensor.zeros (Shape.concat_outer t.z elem)))
      | Var_class.Stacked ->
        Stk (Stacked.create ~z:t.z ~elem ~initial_depth:t.config.initial_depth ())
    in
    Hashtbl.replace t.store v s;
    s

  let create ?(config = default_config) reg (p : Stack_ir.program) ~z =
    if z <= 0 then invalid_arg "Pc_vm.Lanes: need at least one lane";
    let halt = Stack_ir.halt p in
    let t =
      {
        config;
        reg;
        p;
        z;
        halt;
        nb = Array.length p.Stack_ir.blocks;
        store = Hashtbl.create 64;
        (* All lanes start idle: pc top parked at [halt]. *)
        pc = Pc_stack.create ~z ~bottom:halt ~start:halt
               ~initial_depth:config.initial_depth;
        members = Array.init z (fun i -> config.member_base + i);
        occupied = Array.make z false;
        counts = Array.make (Array.length p.Stack_ir.blocks) 0;
        tables =
          (if Sched_policy.needs_tables config.sched then
             Some (Sched_cost.stack_tables ~registry:reg p)
           else None);
        last = -1;
        steps = 0;
        traffic = 0.;
        charged_ops = [];
      }
    in
    Ir_util.Smap.iter (fun v elem -> ignore (allocate t v elem)) p.Stack_ir.shapes;
    t

  let z t = t.z
  let program t = t.p
  let steps t = t.steps
  let occupied t ~lane = t.occupied.(lane)

  let finished t ~lane = t.occupied.(lane) && t.pc.Pc_stack.top.(lane) = t.halt

  let live t ~lane = t.occupied.(lane) && t.pc.Pc_stack.top.(lane) <> t.halt

  let live_count t =
    let n = ref 0 in
    for b = 0 to t.z - 1 do
      if live t ~lane:b then incr n
    done;
    !n

  let free_count t =
    let n = ref 0 in
    for b = 0 to t.z - 1 do
      if not t.occupied.(b) then incr n
    done;
    !n

  let finished_lanes t =
    let acc = ref [] in
    for b = t.z - 1 downto 0 do
      if finished t ~lane:b then acc := b :: !acc
    done;
    !acc

  let read t v =
    match Hashtbl.find_opt t.store v with
    | Some (Reg r) | Some (Msk r) -> !r
    | Some (Stk s) -> Stacked.top s
    | None -> invalid_arg (Printf.sprintf "Pc_vm: read of unwritten variable %s" v)

  (* Restore one lane of every allocated variable to the all-zeros state a
     fresh VM would give it. Variables allocated on demand *after* this
     point start zeroed anyway, so a recycled lane is indistinguishable
     from lane [lane] of a brand-new VM. *)
  let reset_lane_storage t ~lane =
    Hashtbl.iter
      (fun _ s ->
        match s with
        | Reg r | Msk r ->
          let row = Tensor.row_numel !r in
          Array.fill (Tensor.data !r) (lane * row) row 0.
        | Stk s -> Stacked.reset_lane s lane)
      t.store

  let write_lane_row t v ~lane elem_t =
    let s =
      match Hashtbl.find_opt t.store v with
      | Some s -> s
      | None -> allocate t v (Tensor.shape elem_t)
    in
    let dst =
      match s with Reg r | Msk r -> !r | Stk st -> Stacked.top st
    in
    let row = Tensor.row_numel dst in
    if Tensor.numel elem_t <> row then
      invalid_arg
        (Printf.sprintf "Pc_vm.Lanes: input %s has %d elements per lane, expected %d" v
           (Tensor.numel elem_t) row);
    Array.blit (Tensor.data elem_t) 0 (Tensor.data dst) (lane * row) row

  let load t ~lane ~member ~inputs =
    if lane < 0 || lane >= t.z then invalid_arg "Pc_vm.Lanes.load: lane out of range";
    if live t ~lane then
      invalid_arg (Printf.sprintf "Pc_vm.Lanes.load: lane %d is still running" lane);
    if List.length t.p.Stack_ir.inputs <> List.length inputs then
      invalid_arg "Pc_vm: input count mismatch";
    reset_lane_storage t ~lane;
    List.iter2 (fun v e -> write_lane_row t v ~lane e) t.p.Stack_ir.inputs inputs;
    t.members.(lane) <- member;
    t.occupied.(lane) <- true;
    Pc_stack.reset_lane t.pc ~lane ~bottom:t.halt ~start:0

  let lane_outputs t ~lane =
    List.map (fun v -> Tensor.copy (Tensor.slice_row (read t v) lane)) t.p.Stack_ir.outputs

  let retire t ~lane =
    if not (finished t ~lane) then
      invalid_arg (Printf.sprintf "Pc_vm.Lanes.retire: lane %d has not halted" lane);
    let outputs = lane_outputs t ~lane in
    t.occupied.(lane) <- false;
    outputs

  let member t ~lane =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_vm.Lanes.member: lane out of range";
    t.members.(lane)

  (* ---- The lane-migration seam (DESIGN.md S20). ----

     A lane's complete execution state is its member identity, its pc
     column and its row of every allocated variable (for stacked
     variables: the saved frames plus the cached top). Batched
     primitives are row-wise and the RNG keys on the member identity
     carried here — never on the lane index — so exporting this record
     and importing it into any free lane of any pool running the same
     program continues the member's trajectory bitwise-exactly. *)

  type var_lane =
    | Lane_reg of Shape.t * float array
    | Lane_msk of Shape.t * float array
    | Lane_stk of Stacked.lane

  type lane_state = {
    ls_member : int;
    ls_pc : Pc_stack.lane;
    ls_vars : (string * var_lane) list;  (* sorted by name *)
  }

  let export_lane t ~lane =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_vm.Lanes.export_lane: lane out of range";
    if not t.occupied.(lane) then
      invalid_arg
        (Printf.sprintf "Pc_vm.Lanes.export_lane: lane %d is idle" lane);
    let row_of r =
      let row = Tensor.row_numel !r in
      (Vm_util.elem_shape_of_batched !r, Array.sub (Tensor.data !r) (lane * row) row)
    in
    let vars =
      Hashtbl.fold
        (fun v s acc ->
          let vl =
            match s with
            | Reg r -> let e, d = row_of r in Lane_reg (e, d)
            | Msk r -> let e, d = row_of r in Lane_msk (e, d)
            | Stk s -> Lane_stk (Stacked.capture_lane s lane)
          in
          (v, vl) :: acc)
        t.store []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      ls_member = t.members.(lane);
      ls_pc = Pc_stack.capture_lane t.pc ~lane;
      ls_vars = vars;
    }

  let evict t ~lane =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_vm.Lanes.evict: lane out of range";
    if not t.occupied.(lane) then
      invalid_arg (Printf.sprintf "Pc_vm.Lanes.evict: lane %d is idle" lane);
    t.occupied.(lane) <- false;
    (* Park the pc at halt, as create does for idle lanes. *)
    Pc_stack.reset_lane t.pc ~lane ~bottom:t.halt ~start:t.halt

  let import_lane t ~lane st =
    if lane < 0 || lane >= t.z then
      invalid_arg "Pc_vm.Lanes.import_lane: lane out of range";
    if t.occupied.(lane) then
      invalid_arg
        (Printf.sprintf "Pc_vm.Lanes.import_lane: lane %d is occupied" lane);
    (* Variables the source pool never allocated are implicitly zero for
       this member; resetting first makes the destination agree. *)
    reset_lane_storage t ~lane;
    List.iter
      (fun (v, vl) ->
        let class_err () =
          invalid_arg
            (Printf.sprintf
               "Pc_vm.Lanes.import_lane: variable %s changes storage class" v)
        in
        let lookup elem =
          match Hashtbl.find_opt t.store v with
          | Some s -> s
          | None -> allocate t v elem
        in
        match vl with
        | Lane_reg (elem, data) | Lane_msk (elem, data) -> (
          match lookup elem with
          | Reg r | Msk r ->
            let row = Tensor.row_numel !r in
            if Array.length data <> row then
              invalid_arg
                (Printf.sprintf
                   "Pc_vm.Lanes.import_lane: variable %s row width mismatch" v);
            Array.blit data 0 (Tensor.data !r) (lane * row) row
          | Stk _ -> class_err ())
        | Lane_stk l -> (
          match lookup l.Stacked.l_elem with
          | Stk s -> Stacked.restore_lane s lane l
          | Reg _ | Msk _ -> class_err ()))
      st.ls_vars;
    Pc_stack.restore_lane t.pc ~lane st.ls_pc;
    t.members.(lane) <- st.ls_member;
    t.occupied.(lane) <- true

  let lane_state_bytes st =
    let var_elems =
      List.fold_left
        (fun acc (_, vl) ->
          acc
          + (match vl with
            | Lane_reg (_, d) | Lane_msk (_, d) -> Array.length d
            | Lane_stk l ->
              Array.length l.Stacked.l_frames + Array.length l.Stacked.l_top))
        0 st.ls_vars
    in
    (* pc entries price like elements: sp saved slots plus the top. *)
    Vm_util.bytes_per_elem *. float_of_int (var_elems + st.ls_pc.Pc_stack.pl_sp + 1)

  let migrate t ~src ~dst =
    if src = dst then invalid_arg "Pc_vm.Lanes.migrate: src and dst coincide";
    let st = export_lane t ~lane:src in
    evict t ~lane:src;
    import_lane t ~lane:dst st;
    lane_state_bytes st

  let outputs t = List.map (fun v -> Tensor.copy (read t v)) t.p.Stack_ir.outputs

  type image = {
    li_z : int;
    li_steps : int;
    li_last : int;
    li_members : int array;
    li_occupied : bool array;
    li_pc : Vm_image.pc;
    li_store : Vm_image.store;
  }

  let capture t =
    let store =
      Hashtbl.fold
        (fun v s acc ->
          let img =
            match s with
            | Reg r ->
              Vm_image.Reg (Array.copy (Tensor.shape !r), Array.copy (Tensor.data !r))
            | Msk r ->
              Vm_image.Msk (Array.copy (Tensor.shape !r), Array.copy (Tensor.data !r))
            | Stk s -> Vm_image.Stk (Stacked.capture s)
          in
          (v, img) :: acc)
        t.store []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      li_z = t.z;
      li_steps = t.steps;
      li_last = t.last;
      li_members = Array.copy t.members;
      li_occupied = Array.copy t.occupied;
      li_pc = Pc_stack.capture t.pc;
      li_store = store;
    }

  let restore t img =
    if img.li_z <> t.z then invalid_arg "Pc_vm.Lanes.restore: batch size mismatch";
    t.steps <- img.li_steps;
    t.last <- img.li_last;
    Array.blit img.li_members 0 t.members 0 t.z;
    Array.blit img.li_occupied 0 t.occupied 0 t.z;
    Pc_stack.restore t.pc img.li_pc;
    (* Rebuild the store from the image alone: a variable first allocated
       after the capture must disappear, or its stale masked rows would
       leak into lanes the image knows nothing about. *)
    Hashtbl.reset t.store;
    List.iter
      (fun (v, s) ->
        match s with
        | Vm_image.Reg (shape, data) ->
          Hashtbl.replace t.store v (Reg (ref (Tensor.of_array shape data)))
        | Vm_image.Msk (shape, data) ->
          Hashtbl.replace t.store v (Msk (ref (Tensor.of_array shape data)))
        | Vm_image.Stk simg ->
          let s =
            Stacked.create ~z:t.z ~elem:simg.Stacked.i_elem
              ~initial_depth:t.config.initial_depth ()
          in
          Stacked.restore s simg;
          Hashtbl.replace t.store v (Stk s))
      img.li_store

  let check_shape v cur_shape out =
    if not (Shape.equal cur_shape (Tensor.shape out)) then
      invalid_arg
        (Printf.sprintf "Pc_vm: variable %s changes shape from %s to %s" v
           (Shape.to_string cur_shape)
           (Shape.to_string (Tensor.shape out)))

  let write t v ~mask out =
    let row = Tensor.row_numel out in
    let s =
      match Hashtbl.find_opt t.store v with
      | Some s -> s
      | None -> allocate t v (Vm_util.elem_shape_of_batched out)
    in
    match s with
    | Reg r ->
      check_shape v (Tensor.shape !r) out;
      (* Copy, never alias: [out] may be another variable's storage (a
         register move), and that storage is mutated in place by later
         masked writes. *)
      Array.blit (Tensor.data out) 0 (Tensor.data !r) 0 (Tensor.numel out);
      t.traffic <- t.traffic +. (Vm_util.bytes_per_elem *. float_of_int (t.z * row))
    | Msk r ->
      check_shape v (Tensor.shape !r) out;
      Tensor.blit_rows_masked ~mask ~src:out ~dst:!r;
      t.traffic <- t.traffic +. Vm_util.masked_write_bytes ~lanes:t.z ~row
    | Stk s ->
      check_shape v (Tensor.shape (Stacked.top s)) out;
      Stacked.write_top_masked s ~mask out;
      t.traffic <- t.traffic +. Vm_util.masked_write_bytes ~lanes:t.z ~row;
      if t.config.naive_stack_writes then
        (* Pre-O5 cost: the write would be a pop followed by a push. *)
        t.traffic <- t.traffic +. (2. *. Vm_util.stack_move_bytes ~lanes:t.z ~row)

  let read_charged t v =
    let x = read t v in
    (match Hashtbl.find_opt t.store v with
    | Some (Stk _) when not t.config.top_cache ->
      (* Without the top cache every stacked read is a gather. *)
      t.traffic <-
        t.traffic +. Vm_util.stack_move_bytes ~lanes:t.z ~row:(Tensor.row_numel x)
    | Some _ | None -> ());
    x

  (* Execute one scheduled basic block over the currently live lanes.
     Returns [false] (and does nothing) when no lane is runnable. *)
  let step t =
    let z = t.z and halt = t.halt and pc = t.pc and config = t.config in
    Array.fill t.counts 0 t.nb 0;
    let live = ref 0 in
    for b = 0 to z - 1 do
      if pc.Pc_stack.top.(b) < halt then begin
        t.counts.(pc.Pc_stack.top.(b)) <- t.counts.(pc.Pc_stack.top.(b)) + 1;
        incr live
      end
    done;
    match Sched_policy.pick ?tables:t.tables config.sched ~last:t.last ~counts:t.counts with
    | None -> false
    | Some i ->
      t.steps <- t.steps + 1;
      if t.steps > config.max_steps then raise Step_limit_exceeded;
      (* The superstep event fires before the block executes, so a sink
         that raises (an injected fault) aborts the superstep whole —
         never a half-applied block. The occupancy event follows under the
         same rule; it doubles as the profiler's attribution context for
         the engine spans this block is about to charge, and feeds the
         instrument's live-lane gauge (same event, no parallel count). *)
      (match (config.sink, config.instrument) with
      | None, None -> ()
      | sink, instrument ->
        let occ =
          Obs_sink.Occupancy
            {
              shard = 0;
              step = t.steps;
              block = i;
              active = t.counts.(i);
              live = !live;
              total = z;
            }
        in
        (match sink with
        | None -> ()
        | Some sink ->
          sink (Obs_sink.Step { shard = 0; step = t.steps; block = i });
          sink occ);
        Option.iter
          (fun ins -> Instrument.observe_occupancy ins occ)
          instrument);
      t.last <- i;
      let mask = Array.init z (fun b -> pc.Pc_stack.top.(b) = i) in
      let members = Vm_util.indices_of_mask mask in
      let n_active = Array.length members in
      t.traffic <- 0.;
      t.charged_ops <- [];
      let record_prim name =
        Option.iter
          (fun ins -> Instrument.record_prim ins ~name ~useful:n_active ~issued:z)
          config.instrument
      in
      let block = t.p.Stack_ir.blocks.(i) in
      List.iter
        (fun (op : Stack_ir.op) ->
          match op with
          | Stack_ir.Sprim { dst; prim; args } ->
            let impl = Prim.find_exn t.reg prim in
            let arg_tensors = List.map (read_charged t) args in
            let out = impl.Prim.batched ~members:t.members arg_tensors in
            let elem_shapes = List.map Vm_util.elem_shape_of_batched arg_tensors in
            t.charged_ops <-
              (prim, impl.Prim.flops elem_shapes *. float_of_int z) :: t.charged_ops;
            record_prim prim;
            write t dst ~mask out
          | Stack_ir.Sconst { dst; value } ->
            let out = Tensor.broadcast_rows value z in
            t.charged_ops <-
              ("const", float_of_int (Tensor.numel value * z)) :: t.charged_ops;
            write t dst ~mask out
          | Stack_ir.Smov { dst; src } ->
            let out = read_charged t src in
            t.charged_ops <-
              ("mov", float_of_int (Tensor.row_numel out * z)) :: t.charged_ops;
            write t dst ~mask out
          | Stack_ir.Spush v -> (
            match Hashtbl.find_opt t.store v with
            | Some (Stk s) ->
              Stacked.push s ~mask;
              t.traffic <-
                t.traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
              Option.iter
                (fun ins ->
                  Instrument.record_push ins ~lanes:n_active;
                  Instrument.record_depth ins (Stacked.max_depth s))
                config.instrument
            | Some (Reg _ | Msk _) ->
              invalid_arg (Printf.sprintf "Pc_vm: push of non-stacked variable %s" v)
            | None ->
              invalid_arg (Printf.sprintf "Pc_vm: push of unwritten variable %s" v))
          | Stack_ir.Spop v -> (
            match Hashtbl.find_opt t.store v with
            | Some (Stk s) ->
              Stacked.pop s ~mask;
              t.traffic <-
                t.traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
              Option.iter
                (fun ins -> Instrument.record_pop ins ~lanes:n_active)
                config.instrument
            | Some (Reg _ | Msk _) ->
              invalid_arg (Printf.sprintf "Pc_vm: pop of non-stacked variable %s" v)
            | None ->
              invalid_arg (Printf.sprintf "Pc_vm: pop of unwritten variable %s" v)))
        block.Stack_ir.ops;
      (* Terminator. *)
      let control_ops = ref 2 in
      (match block.Stack_ir.term with
      | Stack_ir.Sjump j -> Pc_stack.set_top_masked pc ~mask j
      | Stack_ir.Sbranch { cond; if_true; if_false } ->
        incr control_ops;
        let data = Tensor.data (read_charged t cond) in
        Array.iter
          (fun b ->
            pc.Pc_stack.top.(b) <- (if data.(b) <> 0. then if_true else if_false))
          members
      | Stack_ir.Spushjump { ret; entry } ->
        Pc_stack.set_top_masked pc ~mask ret;
        Pc_stack.push pc ~mask;
        Pc_stack.set_top_masked pc ~mask entry;
        t.traffic <- t.traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:1;
        Option.iter
          (fun ins -> Instrument.record_depth ins (Pc_stack.max_depth pc))
          config.instrument
      | Stack_ir.Spushbranch { ret; cond; if_true; if_false } ->
        incr control_ops;
        let data = Tensor.data (read_charged t cond) in
        Pc_stack.set_top_masked pc ~mask ret;
        Pc_stack.push pc ~mask;
        Array.iter
          (fun b ->
            pc.Pc_stack.top.(b) <- (if data.(b) <> 0. then if_true else if_false))
          members;
        t.traffic <- t.traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:1;
        Option.iter
          (fun ins -> Instrument.record_depth ins (Pc_stack.max_depth pc))
          config.instrument
      | Stack_ir.Sreturn ->
        Pc_stack.pop pc ~mask;
        t.traffic <- t.traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:1);
      Option.iter
        (fun eng ->
          Engine.charge_block eng ~ops:(List.rev t.charged_ops)
            ~control_ops:!control_ops ~traffic_bytes:t.traffic)
        config.engine;
      Option.iter
        (fun ins -> Instrument.record_block ~block:i ins ~active:n_active ~batch:z)
        config.instrument;
      true
end

let run ?(config = default_config) reg (p : Stack_ir.program) ~batch =
  let z = batch_size batch in
  let lanes = Lanes.create ~config reg p ~z in
  for lane = 0 to z - 1 do
    Lanes.load lanes ~lane ~member:(config.member_base + lane)
      ~inputs:(List.map (fun t -> Tensor.slice_row t lane) batch)
  done;
  while Lanes.step lanes do
    ()
  done;
  (* Fresh tensors: the VM's storage buffers must not escape. *)
  List.map (fun v -> Tensor.copy (Lanes.read lanes v)) p.Stack_ir.outputs

let final_max_depth = Instrument.max_depth
