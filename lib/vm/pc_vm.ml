type config = {
  sched : Sched.t;
  engine : Engine.t option;
  instrument : Instrument.t option;
  max_steps : int;
  initial_depth : int;
  top_cache : bool;
  naive_stack_writes : bool;
  member_base : int;
}

let default_config =
  {
    sched = Sched.Earliest;
    engine = None;
    instrument = None;
    max_steps = 100_000_000;
    initial_depth = 4;
    top_cache = true;
    naive_stack_writes = false;
    member_base = 0;
  }

exception Step_limit_exceeded

(* The program-counter stack: same layout as Stacked but over ints. *)
module Pc_stack = struct
  type t = {
    z : int;
    mutable cap : int;
    mutable data : int array;
    sp : int array;
    top : int array;
  }

  let create ~z ~bottom ~start ~initial_depth =
    let cap = max 1 initial_depth in
    let t =
      { z; cap; data = Array.make (cap * z) 0; sp = Array.make z 1; top = Array.make z start }
    in
    for b = 0 to z - 1 do
      t.data.(b) <- bottom
    done;
    t

  let grow t =
    let cap' = t.cap * 2 in
    let data' = Array.make (cap' * t.z) 0 in
    Array.blit t.data 0 data' 0 (t.cap * t.z);
    t.cap <- cap';
    t.data <- data'

  let push t ~mask =
    let need = ref 0 in
    Array.iteri (fun b m -> if m && t.sp.(b) >= !need then need := t.sp.(b) + 1) mask;
    while !need > t.cap do
      grow t
    done;
    Array.iteri
      (fun b m ->
        if m then begin
          t.data.((t.sp.(b) * t.z) + b) <- t.top.(b);
          t.sp.(b) <- t.sp.(b) + 1
        end)
      mask

  let pop t ~mask =
    Array.iteri
      (fun b m ->
        if m then begin
          if t.sp.(b) = 0 then
            invalid_arg (Printf.sprintf "Pc_vm: pc stack underflow for member %d" b);
          t.sp.(b) <- t.sp.(b) - 1;
          t.top.(b) <- t.data.((t.sp.(b) * t.z) + b)
        end)
      mask

  let set_top_masked t ~mask v =
    Array.iteri (fun b m -> if m then t.top.(b) <- v) mask

  let max_depth t = Array.fold_left max 0 t.sp
end

type storage = Reg of Tensor.t ref | Msk of Tensor.t ref | Stk of Stacked.t

let batch_size batch =
  match batch with
  | [] -> invalid_arg "Pc_vm: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Pc_vm: inputs must carry a leading batch dimension";
    let z = (Tensor.shape first).(0) in
    List.iter
      (fun t ->
        if Tensor.rank t = 0 || (Tensor.shape t).(0) <> z then
          invalid_arg "Pc_vm: inputs disagree on the batch dimension")
      batch;
    z

let run ?(config = default_config) reg (p : Stack_ir.program) ~batch =
  let z = batch_size batch in
  let halt = Stack_ir.halt p in
  let nb = Array.length p.Stack_ir.blocks in
  let store : (string, storage) Hashtbl.t = Hashtbl.create 64 in
  let full_mask = Array.make z true in
  (* Preallocate storage for variables with inferred shapes. *)
  let allocate v elem =
    let s =
      match Stack_ir.class_of p v with
      | Var_class.Temp -> Reg (ref (Tensor.zeros (Shape.concat_outer z elem)))
      | Var_class.Masked -> Msk (ref (Tensor.zeros (Shape.concat_outer z elem)))
      | Var_class.Stacked ->
        Stk (Stacked.create ~z ~elem ~initial_depth:config.initial_depth ())
    in
    Hashtbl.replace store v s;
    s
  in
  Ir_util.Smap.iter (fun v elem -> ignore (allocate v elem)) p.Stack_ir.shapes;
  let storage_of v value_elem =
    match Hashtbl.find_opt store v with
    | Some s -> s
    | None -> allocate v value_elem
  in
  let read v =
    match Hashtbl.find_opt store v with
    | Some (Reg r) | Some (Msk r) -> !r
    | Some (Stk s) -> Stacked.top s
    | None -> invalid_arg (Printf.sprintf "Pc_vm: read of unwritten variable %s" v)
  in
  (* Per-step accounting accumulators. *)
  let traffic = ref 0. in
  let charged_ops = ref [] in
  let check_shape v cur_shape out =
    if not (Shape.equal cur_shape (Tensor.shape out)) then
      invalid_arg
        (Printf.sprintf "Pc_vm: variable %s changes shape from %s to %s" v
           (Shape.to_string cur_shape)
           (Shape.to_string (Tensor.shape out)))
  in
  let write v ~mask out =
    let row = Tensor.row_numel out in
    match storage_of v (Vm_util.elem_shape_of_batched out) with
    | Reg r ->
      check_shape v (Tensor.shape !r) out;
      (* Copy, never alias: [out] may be another variable's storage (a
         register move), and that storage is mutated in place by later
         masked writes. *)
      Array.blit (Tensor.data out) 0 (Tensor.data !r) 0 (Tensor.numel out);
      traffic := !traffic +. (Vm_util.bytes_per_elem *. float_of_int (z * row))
    | Msk r ->
      check_shape v (Tensor.shape !r) out;
      Tensor.blit_rows_masked ~mask ~src:out ~dst:!r;
      traffic := !traffic +. Vm_util.masked_write_bytes ~lanes:z ~row
    | Stk s ->
      check_shape v (Tensor.shape (Stacked.top s)) out;
      Stacked.write_top_masked s ~mask out;
      traffic := !traffic +. Vm_util.masked_write_bytes ~lanes:z ~row;
      if config.naive_stack_writes then
        (* Pre-O5 cost: the write would be a pop followed by a push. *)
        traffic := !traffic +. (2. *. Vm_util.stack_move_bytes ~lanes:z ~row)
  in
  let read_charged v =
    let t = read v in
    (match Hashtbl.find_opt store v with
    | Some (Stk _) when not config.top_cache ->
      (* Without the top cache every stacked read is a gather. *)
      traffic := !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Tensor.row_numel t)
    | Some _ | None -> ());
    t
  in
  (* Bind inputs. *)
  if List.length p.Stack_ir.inputs <> List.length batch then
    invalid_arg "Pc_vm: input count mismatch";
  List.iter2 (fun v t -> write v ~mask:full_mask t) p.Stack_ir.inputs batch;
  traffic := 0.;
  charged_ops := [];
  (* pc stack: bottom sentinel [halt], executing from block 0. *)
  let pc = Pc_stack.create ~z ~bottom:halt ~start:0 ~initial_depth:config.initial_depth in
  let counts = Array.make nb 0 in
  let last = ref (-1) in
  let members_of mask = Vm_util.indices_of_mask mask in
  (* RNG member identities: lane [i] of this VM is global batch member
     [member_base + i], so a shard of a larger batch draws the same random
     streams it would draw in the unsharded run. *)
  let all = Array.init z (fun i -> config.member_base + i) in
  let steps = ref 0 in
  let rec vm_loop () =
    Array.fill counts 0 nb 0;
    for b = 0 to z - 1 do
      if pc.Pc_stack.top.(b) < halt then
        counts.(pc.Pc_stack.top.(b)) <- counts.(pc.Pc_stack.top.(b)) + 1
    done;
    match Sched.pick config.sched ~last:!last ~counts with
    | None -> ()
    | Some i ->
      incr steps;
      if !steps > config.max_steps then raise Step_limit_exceeded;
      last := i;
      let mask = Array.init z (fun b -> pc.Pc_stack.top.(b) = i) in
      let members = members_of mask in
      let n_active = Array.length members in
      traffic := 0.;
      charged_ops := [];
      let record_prim name =
        Option.iter
          (fun ins -> Instrument.record_prim ins ~name ~useful:n_active ~issued:z)
          config.instrument
      in
      let block = p.Stack_ir.blocks.(i) in
      List.iter
        (fun (op : Stack_ir.op) ->
          match op with
          | Stack_ir.Sprim { dst; prim; args } ->
            let impl = Prim.find_exn reg prim in
            let arg_tensors = List.map read_charged args in
            let out = impl.Prim.batched ~members:all arg_tensors in
            let elem_shapes = List.map Vm_util.elem_shape_of_batched arg_tensors in
            charged_ops :=
              (prim, impl.Prim.flops elem_shapes *. float_of_int z) :: !charged_ops;
            record_prim prim;
            write dst ~mask out
          | Stack_ir.Sconst { dst; value } ->
            let out = Tensor.broadcast_rows value z in
            charged_ops :=
              ("const", float_of_int (Tensor.numel value * z)) :: !charged_ops;
            write dst ~mask out
          | Stack_ir.Smov { dst; src } ->
            let out = read_charged src in
            charged_ops :=
              ("mov", float_of_int (Tensor.row_numel out * z)) :: !charged_ops;
            write dst ~mask out
          | Stack_ir.Spush v -> (
            match Hashtbl.find_opt store v with
            | Some (Stk s) ->
              Stacked.push s ~mask;
              traffic :=
                !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
              Option.iter
                (fun ins ->
                  Instrument.record_push ins ~lanes:n_active;
                  Instrument.record_depth ins (Stacked.max_depth s))
                config.instrument
            | Some (Reg _ | Msk _) ->
              invalid_arg (Printf.sprintf "Pc_vm: push of non-stacked variable %s" v)
            | None ->
              invalid_arg (Printf.sprintf "Pc_vm: push of unwritten variable %s" v))
          | Stack_ir.Spop v -> (
            match Hashtbl.find_opt store v with
            | Some (Stk s) ->
              Stacked.pop s ~mask;
              traffic :=
                !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:(Stacked.row s);
              Option.iter
                (fun ins -> Instrument.record_pop ins ~lanes:n_active)
                config.instrument
            | Some (Reg _ | Msk _) ->
              invalid_arg (Printf.sprintf "Pc_vm: pop of non-stacked variable %s" v)
            | None ->
              invalid_arg (Printf.sprintf "Pc_vm: pop of unwritten variable %s" v)))
        block.Stack_ir.ops;
      (* Terminator. *)
      let control_ops = ref 2 in
      (match block.Stack_ir.term with
      | Stack_ir.Sjump j -> Pc_stack.set_top_masked pc ~mask j
      | Stack_ir.Sbranch { cond; if_true; if_false } ->
        incr control_ops;
        let data = Tensor.data (read_charged cond) in
        Array.iter
          (fun b ->
            pc.Pc_stack.top.(b) <- (if data.(b) <> 0. then if_true else if_false))
          members
      | Stack_ir.Spushjump { ret; entry } ->
        Pc_stack.set_top_masked pc ~mask ret;
        Pc_stack.push pc ~mask;
        Pc_stack.set_top_masked pc ~mask entry;
        traffic := !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:1;
        Option.iter
          (fun ins -> Instrument.record_depth ins (Pc_stack.max_depth pc))
          config.instrument
      | Stack_ir.Sreturn ->
        Pc_stack.pop pc ~mask;
        traffic := !traffic +. Vm_util.stack_move_bytes ~lanes:z ~row:1);
      Option.iter
        (fun eng ->
          Engine.charge_block eng ~ops:(List.rev !charged_ops)
            ~control_ops:!control_ops ~traffic_bytes:!traffic)
        config.engine;
      Option.iter
        (fun ins -> Instrument.record_block ~block:i ins ~active:n_active ~batch:z)
        config.instrument;
      vm_loop ()
  in
  vm_loop ();
  (* Fresh tensors: the VM's storage buffers must not escape. *)
  List.map (fun v -> Tensor.copy (read v)) p.Stack_ir.outputs

let final_max_depth = Instrument.max_depth
