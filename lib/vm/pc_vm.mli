(** Program-counter autobatching — the paper's Algorithm 2.

    Executes the merged stack-machine program ({!Stack_ir}) on a whole
    batch with no host recursion at all: every batch member's call stack
    lives in per-variable data stacks ({!Stacked}) and a program-counter
    stack. The locally active set is recomputed every step from the pc
    tops, so members at *different stack depths* batch together — the
    property that lets NUTS chains synchronize on gradient evaluations
    rather than trajectory boundaries (Figure 6), and the whole runtime
    be a single non-recursive loop compilable to an XLA-style device
    program (Figure 5).

    Execution is masking-style (all lanes computed, inactive results
    discarded), matching the paper's static-shape target platforms. *)

type config = {
  sched : Sched.t;
  engine : Engine.t option;
  instrument : Instrument.t option;
  max_steps : int;
  initial_depth : int;        (** initial per-variable stack capacity *)
  top_cache : bool;
      (** O4. The implementation always keeps the cache (reads are host
          arrays either way); disabling charges the simulated cost of
          re-gathering stacked reads, for the optimization ablation. *)
  naive_stack_writes : bool;
      (** O5 ablation: price every write to a stacked variable as the
          uncancelled pop+push pair instead of an in-place update. *)
  member_base : int;
      (** Global index of lane 0, for sharded execution: lane [i] draws
          the RNG streams of batch member [member_base + i]. Default 0. *)
}

val default_config : config

exception Step_limit_exceeded

(** The program-counter stack: the {!Stacked} layout over block indices.
    Exposed for direct testing of the hot growth/underflow paths the VM
    (and each shard of a sharded run) exercises. *)
module Pc_stack : sig
  type t = {
    z : int;
    mutable cap : int;
    mutable data : int array;  (** [cap × z], depth-major *)
    sp : int array;            (** per-member stack pointer *)
    top : int array;           (** cached top element per member *)
  }

  val create : z:int -> bottom:int -> start:int -> initial_depth:int -> t
  val push : t -> mask:bool array -> unit
  val pop : t -> mask:bool array -> unit
  (** Raises [Invalid_argument] on underflow of any masked member. *)

  val set_top_masked : t -> mask:bool array -> int -> unit
  val max_depth : t -> int
end

val run :
  ?config:config ->
  Prim.registry ->
  Stack_ir.program ->
  batch:Tensor.t list ->
  Tensor.t list
(** [run reg p ~batch] executes the program on inputs carrying a common
    leading batch dimension; results do too. *)

val final_max_depth : Instrument.t -> int
(** Convenience alias of {!Instrument.max_depth}. *)
