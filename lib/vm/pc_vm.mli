(** Program-counter autobatching — the paper's Algorithm 2.

    Executes the merged stack-machine program ({!Stack_ir}) on a whole
    batch with no host recursion at all: every batch member's call stack
    lives in per-variable data stacks ({!Stacked}) and a program-counter
    stack. The locally active set is recomputed every step from the pc
    tops, so members at *different stack depths* batch together — the
    property that lets NUTS chains synchronize on gradient evaluations
    rather than trajectory boundaries (Figure 6), and the whole runtime
    be a single non-recursive loop compilable to an XLA-style device
    program (Figure 5).

    Execution is masking-style (all lanes computed, inactive results
    discarded), matching the paper's static-shape target platforms. *)

type config = {
  sched : Sched_policy.t;
  engine : Engine.t option;
  instrument : Instrument.t option;
  max_steps : int;
  initial_depth : int;        (** initial per-variable stack capacity *)
  top_cache : bool;
      (** O4. The implementation always keeps the cache (reads are host
          arrays either way); disabling charges the simulated cost of
          re-gathering stacked reads, for the optimization ablation. *)
  naive_stack_writes : bool;
      (** O5 ablation: price every write to a stacked variable as the
          uncancelled pop+push pair instead of an in-place update. *)
  member_base : int;
      (** Global index of lane 0, for sharded execution: lane [i] draws
          the RNG streams of batch member [member_base + i]. Default 0. *)
  sink : Obs_sink.t option;
      (** Structured observability seam: once per executed superstep,
          before the scheduled block runs, the VM emits
          [Obs_sink.Step {shard = 0; step; block}] with the post-increment
          step count and the scheduled block's index. Shared by tracing
          (record the superstep timeline) and the resilience layer
          (superstep-granular fault injection and checkpoint triggers):
          a sink that raises aborts the step with no block effects
          applied. Default [None]; the off path is one match per step. *)
}

val default_config : config

exception Step_limit_exceeded

(** The program-counter stack: the {!Stacked} layout over block indices.
    Exposed for direct testing of the hot growth/underflow paths the VM
    (and each shard of a sharded run) exercises. *)
module Pc_stack : sig
  type t = {
    z : int;
    mutable cap : int;
    mutable data : int array;  (** [cap × z], depth-major *)
    sp : int array;            (** per-member stack pointer *)
    top : int array;           (** cached top element per member *)
  }

  val create : z:int -> bottom:int -> start:int -> initial_depth:int -> t
  val push : t -> mask:bool array -> unit
  val pop : t -> mask:bool array -> unit
  (** Raises [Invalid_argument] on underflow of any masked member. *)

  val set_top_masked : t -> mask:bool array -> int -> unit

  val reset_lane : t -> lane:int -> bottom:int -> start:int -> unit
  (** Re-seed one member's pc stack as [create] would: sentinel [bottom]
      below, executing from [start]. Other members are untouched. *)

  (** One member's pc column (saved entries bottom-first plus the cached
      top), for the lane-migration seam. *)
  type lane = { pl_sp : int; pl_stack : int array; pl_top : int }

  val capture_lane : t -> lane:int -> lane

  val restore_lane : t -> lane:int -> lane -> unit
  (** Overwrite one member's pc column; capacity grows as needed, other
      members untouched. *)

  val max_depth : t -> int

  val capture : t -> Vm_image.pc
  (** Full depth-major checkpoint (data, stack pointers, cached tops). *)

  val restore : t -> Vm_image.pc -> unit
  (** Overwrite the stack with a captured image. Raises [Invalid_argument]
      if the member count disagrees or the image is internally
      inconsistent. *)
end

(** The steppable lane pool behind both {!run} and the continuous-batching
    server ({!module:Server} in [lib/serve]).

    A lane is one batch slot. Lanes are individually [load]ed with a
    request's inputs and RNG member identity, advance together one
    scheduled basic block per {!Lanes.step} (masking-style over the whole
    width), and are individually [retire]d the moment their program
    counter hits halt — the VM-level mechanism that lets a serving layer
    refill early-finishing lanes mid-run instead of padding out the batch
    until its slowest member drains.

    Per-lane isolation is exact: batched primitives are row-wise (each
    output row depends only on the same input row and that row's member
    identity — the contract in HACKING.md), masked writes never touch
    other lanes, and [load] resets the lane's slice of every variable and
    both stacks to the all-zero fresh-VM state. A request served in any
    lane of any mix of neighbours is therefore bitwise identical to
    running it alone with [member_base] equal to its member. *)
module Lanes : sig
  type t

  val create : ?config:config -> Prim.registry -> Stack_ir.program -> z:int -> t
  (** [z] lanes, all idle. [config.member_base] seeds the default member
      identities; [load] overrides them per lane. *)

  val z : t -> int
  val program : t -> Stack_ir.program
  val steps : t -> int
  (** Basic blocks executed so far (monotone; bounded by
      [config.max_steps]). *)

  val occupied : t -> lane:int -> bool
  (** The lane carries a request (running or finished-but-unretired). *)

  val live : t -> lane:int -> bool
  (** Occupied and not yet halted. *)

  val finished : t -> lane:int -> bool
  (** Occupied and halted: outputs are ready to {!retire}. *)

  val live_count : t -> int
  val free_count : t -> int

  val finished_lanes : t -> int list
  (** Ascending lane indices ready to retire. *)

  val load : t -> lane:int -> member:int -> inputs:Tensor.t list -> unit
  (** Occupy a free (or finished) lane with a fresh request: inputs are
      *element* tensors (no batch dimension), [member] is the global RNG
      member identity the lane's draws will use. Raises
      [Invalid_argument] if the lane is still live or the inputs
      mismatch the program. *)

  val step : t -> bool
  (** Execute one scheduled basic block over the live lanes; [false] when
      no lane is runnable (all idle or finished). Raises
      {!Step_limit_exceeded} past [config.max_steps]. *)

  val retire : t -> lane:int -> Tensor.t list
  (** Extract a finished lane's outputs (element tensors, freshly copied)
      and free the lane. Raises [Invalid_argument] unless
      [finished t ~lane]. *)

  val lane_outputs : t -> lane:int -> Tensor.t list
  (** Peek one lane's current output rows without freeing the lane. *)

  val member : t -> lane:int -> int
  (** The lane's global RNG member identity (meaningful while occupied). *)

  (** {2 The lane-migration seam (DESIGN.md S20)}

      A lane's complete execution state: member identity, pc column, and
      one row of every allocated variable. Batched primitives are
      row-wise and the RNG keys on the member identity carried here —
      never on the lane index — so a lane state imported into any free
      lane of any pool running the same program continues the member's
      trajectory bitwise-exactly, under any scheduling policy. The
      defragmenting runtime ({!Sched_vm}) and the migration fuzzer are
      the two clients. *)

  type var_lane =
    | Lane_reg of Shape.t * float array  (** element shape, one row *)
    | Lane_msk of Shape.t * float array
    | Lane_stk of Stacked.lane

  type lane_state = {
    ls_member : int;
    ls_pc : Pc_stack.lane;
    ls_vars : (string * var_lane) list;  (** sorted by name *)
  }

  val export_lane : t -> lane:int -> lane_state
  (** Capture an occupied lane (live or finished). Read-only: the lane
      keeps running; pair with {!evict} to move rather than copy. *)

  val evict : t -> lane:int -> unit
  (** Free an occupied lane without reading outputs (the member left via
      {!export_lane}); the pc parks at halt like a fresh idle lane. *)

  val import_lane : t -> lane:int -> lane_state -> unit
  (** Install a captured lane state into a free lane of a pool running
      the same program. The lane's slice of every variable is reset
      first, so variables the source pool never allocated stay implicitly
      zero. Raises [Invalid_argument] if the lane is occupied or the
      state disagrees with the pool's program. *)

  val lane_state_bytes : lane_state -> float
  (** Payload size of a migration, for transfer pricing. *)

  val migrate : t -> src:int -> dst:int -> float
  (** [export_lane src; evict src; import_lane dst] within one pool;
      returns the bytes moved. *)

  val outputs : t -> Tensor.t list
  (** The full-width output tensors (leading batch dimension), freshly
      copied — what {!val:run} returns after the pool drains. *)

  (** Plain-data checkpoint of a lane pool: step count, scheduler cursor,
      lane occupancy and member identities, the pc stack, and every
      allocated variable (sorted by name, so images of equal states are
      structurally equal). Together with the engine/instrument snapshots
      this is the VM's complete execution state: a pool restored from an
      image replays bitwise identically to the original. *)
  type image = {
    li_z : int;
    li_steps : int;
    li_last : int;              (** scheduler cursor (Round_robin uses it) *)
    li_members : int array;
    li_occupied : bool array;
    li_pc : Vm_image.pc;
    li_store : Vm_image.store;
  }

  val capture : t -> image

  val restore : t -> image -> unit
  (** Overwrite the pool's state with the image. The store is rebuilt from
      the image alone — variables first allocated after the capture
      disappear, exactly as if execution had never passed the capture
      point. Raises [Invalid_argument] on lane-count mismatch. [t] must
      run the same program the image was captured from. *)
end

val run :
  ?config:config ->
  Prim.registry ->
  Stack_ir.program ->
  batch:Tensor.t list ->
  Tensor.t list
(** [run reg p ~batch] executes the program on inputs carrying a common
    leading batch dimension; results do too. *)

val final_max_depth : Instrument.t -> int
(** Convenience alias of {!Instrument.max_depth}. *)
