(** Deprecated alias of {!Sched_policy} (the [lib/sched] scheduling
    subsystem), kept so historical spellings like [Sched.Earliest] and
    [Vm.Sched]-era call sites keep compiling. There is exactly one policy
    type: [Sched.t = Sched_policy.t], and {!Sched_policy} is the home of
    the documentation, the cost tables ({!Sched_cost}) and the
    defragmentation planner ({!Sched_plan}). New code should say
    [Sched_policy]. *)

include module type of struct
  include Sched_policy
end
