type config = {
  policy : Sched_policy.t;
  plan : Sched_plan.config;
  lanes : int;
  mesh : Mesh.t;
  mode : Engine.mode option;
  collective : Collectives.algorithm;
  max_steps : int;
  sink : Obs_sink.t option;
}

let default_config =
  {
    policy = Sched_policy.Earliest;
    plan = Sched_plan.default;
    lanes = 8;
    mesh = Mesh.gpu_pod ~n:1 ();
    mode = None;
    collective = Collectives.Ring;
    max_steps = 100_000_000;
    sink = None;
  }

type result = {
  outputs : Tensor.t list;
  counters : Engine.Counters.t;
  supersteps : int;
  vm_steps : int;
  refills : int;
  migrations : int;
  steals : int;
  migration_bytes : float;
  compute_time : float;
  collective_time : float;
  sim_time : float;
}

(* Per planning round every device contributes its lane view to an
   all-reduce (the same convergence flag Shard_vm pays, plus the live/free
   counts the planner reads). *)
let sync_bytes = 8.

let batch_size batch =
  match batch with
  | [] -> invalid_arg "Sched_vm: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Sched_vm: inputs must carry a leading batch dimension";
    let n = (Tensor.shape first).(0) in
    if n = 0 then invalid_arg "Sched_vm: empty batch";
    List.iter
      (fun t ->
        if Tensor.rank t = 0 || (Tensor.shape t).(0) <> n then
          invalid_arg "Sched_vm: inputs disagree on the batch dimension")
      batch;
    n

let bytes_of ts =
  List.fold_left (fun acc x -> acc +. (8. *. float_of_int (Tensor.numel x))) 0. ts

let run ?(config = default_config) reg (p : Stack_ir.program) ~batch =
  let n = batch_size batch in
  if config.lanes <= 0 then
    invalid_arg "Sched_vm: need at least one lane per shard";
  if not config.plan.Sched_plan.refill then
    invalid_arg "Sched_vm: plan.refill must be enabled (members enter via refills)";
  let k = Mesh.size config.mesh in
  let z = config.lanes in
  let engines =
    Array.init k (fun i ->
        Option.map
          (fun mode -> Engine.create ~device:(Mesh.device config.mesh i) ~mode ())
          config.mode)
  in
  (* The rounds below run sequentially on the calling domain, shard 0
     first — deliberately, not an oversight: a migration schedule must be
     a deterministic function of the lane state for the bitwise gate (and
     the seeded-schedule fuzzer) to mean anything, and the measurement is
     the per-device simulated clock, not host wall time. Shard_vm keeps
     the free-running one-domain-per-shard path for migration-free runs. *)
  let pools =
    Array.init k (fun i ->
        let sink = Option.map (Obs_sink.tag_shard i) config.sink in
        (match (engines.(i), sink) with
        | Some engine, Some sink -> Engine.set_sink engine sink
        | _ -> ());
        let pool_config =
          {
            Pc_vm.default_config with
            sched = config.policy;
            engine = engines.(i);
            max_steps = config.max_steps;
            sink;
          }
        in
        Pc_vm.Lanes.create ~config:pool_config reg p ~z)
  in
  let queue = Queue.create () in
  for m = 0 to n - 1 do
    Queue.add m queue
  done;
  let member_inputs m = List.map (fun t -> Tensor.slice_row t m) batch in
  let outputs : Tensor.t list option array = Array.make n None in
  let refills = ref 0 and migrations = ref 0 and steals = ref 0 in
  let migration_bytes = ref 0. in
  let rounds = ref 0 in
  let drained () =
    Queue.is_empty queue
    && Array.for_all (fun pool -> Pc_vm.Lanes.free_count pool = z) pools
  in
  while not (drained ()) do
    incr rounds;
    let activity = ref false in
    (* Retire: finished lanes free up before the planner looks. *)
    Array.iteri
      (fun s pool ->
        List.iter
          (fun lane ->
            let m = Pc_vm.Lanes.member pool ~lane in
            let outs = Pc_vm.Lanes.retire pool ~lane in
            Option.iter
              (fun e -> Engine.charge_retire e ~bytes:(bytes_of outs))
              engines.(s);
            outputs.(m) <- Some outs;
            activity := true)
          (Pc_vm.Lanes.finished_lanes pool))
      pools;
    (* Plan against the post-retire occupancy. *)
    let views =
      Array.map
        (fun pool ->
          let free = ref [] and live = ref [] in
          for lane = z - 1 downto 0 do
            if Pc_vm.Lanes.live pool ~lane then live := lane :: !live
            else if not (Pc_vm.Lanes.occupied pool ~lane) then
              free := lane :: !free
          done;
          { Sched_plan.free = !free; live = !live })
        pools
    in
    let plan =
      Sched_plan.plan config.plan ~pending:(Queue.length queue) ~views
    in
    List.iter
      (fun { Sched_plan.r_shard; r_lane } ->
        match Queue.take_opt queue with
        | None -> ()
        | Some m ->
          let inputs = member_inputs m in
          Pc_vm.Lanes.load pools.(r_shard) ~lane:r_lane ~member:m ~inputs;
          Option.iter
            (fun e -> Engine.charge_refill e ~bytes:(bytes_of inputs))
            engines.(r_shard);
          incr refills;
          activity := true)
      plan.Sched_plan.refills;
    List.iter
      (fun move ->
        let { Sched_plan.m_src_shard; m_src_lane; m_dst_shard; m_dst_lane } =
          move
        in
        let state = Pc_vm.Lanes.export_lane pools.(m_src_shard) ~lane:m_src_lane in
        Pc_vm.Lanes.evict pools.(m_src_shard) ~lane:m_src_lane;
        Pc_vm.Lanes.import_lane pools.(m_dst_shard) ~lane:m_dst_lane state;
        let bytes = Pc_vm.Lanes.lane_state_bytes state in
        incr migrations;
        migration_bytes := !migration_bytes +. bytes;
        if m_src_shard = m_dst_shard then
          Option.iter
            (fun e -> Engine.charge_transfer e ~name:"defrag-move" ~bytes ~seconds:0.)
            engines.(m_src_shard)
        else begin
          incr steals;
          let seconds = Collectives.p2p_time config.mesh ~bytes in
          Option.iter
            (fun e ->
              Engine.charge_transfer e ~name:"steal-transfer" ~bytes ~seconds)
            engines.(m_dst_shard)
        end;
        (match config.sink with
        | None -> ()
        | Some sink ->
          sink
            (Obs_sink.Migration
               {
                 src_shard = m_src_shard;
                 dst_shard = m_dst_shard;
                 member = state.Pc_vm.Lanes.ls_member;
                 bytes;
                 step = !rounds;
               }));
        activity := true)
      plan.Sched_plan.moves;
    (* One scheduled block per shard per round — the SPMD superstep. *)
    Array.iter
      (fun pool -> if Pc_vm.Lanes.step pool then activity := true)
      pools;
    if not !activity then
      (* Unreachable by construction (finished lanes retire, free lanes
         refill while members are pending), kept as a loud failure over a
         silent spin. *)
      invalid_arg "Sched_vm: no progress — lane pool wedged"
  done;
  let outputs =
    match outputs.(0) with
    | None -> assert false
    | Some first ->
      List.mapi
        (fun j _ ->
          Tensor.stack_rows
            (List.init n (fun m ->
                 match outputs.(m) with
                 | Some outs -> List.nth outs j
                 | None -> assert false)))
        first
  in
  let counters =
    Array.fold_left
      (fun acc e ->
        match e with
        | Some e -> Engine.Counters.add acc (Engine.snapshot e).Engine.at
        | None -> acc)
      Engine.Counters.zero engines
  in
  let compute_time =
    Array.fold_left
      (fun acc e ->
        match e with Some e -> Float.max acc (Engine.elapsed e) | None -> acc)
      0. engines
  in
  let output_bytes = bytes_of outputs in
  let all_reduce_total =
    float_of_int !rounds
    *. Collectives.all_reduce_time config.mesh config.collective
         ~bytes:sync_bytes
  in
  let all_gather_total =
    Collectives.all_gather_time config.mesh config.collective
      ~bytes:output_bytes
  in
  let collective_time = all_reduce_total +. all_gather_total in
  (match config.sink with
  | None -> ()
  | Some sink ->
    if collective_time > 0. then begin
      sink
        (Obs_sink.Collective
           {
             name = "all-reduce";
             bytes = sync_bytes *. float_of_int !rounds;
             t0 = compute_time;
             t1 = compute_time +. all_reduce_total;
           });
      sink
        (Obs_sink.Collective
           {
             name = "all-gather";
             bytes = output_bytes;
             t0 = compute_time +. all_reduce_total;
             t1 = compute_time +. collective_time;
           })
    end);
  {
    outputs;
    counters;
    supersteps = !rounds;
    vm_steps = Array.fold_left (fun acc pool -> acc + Pc_vm.Lanes.steps pool) 0 pools;
    refills = !refills;
    migrations = !migrations;
    steals = !steals;
    migration_bytes = !migration_bytes;
    compute_time;
    collective_time;
    sim_time = compute_time +. collective_time;
  }
