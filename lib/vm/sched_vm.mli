(** The defragmenting scheduler runtime (DESIGN.md S20).

    Runs the merged stack-machine program over a batch on a mesh of lane
    pools — one {!Pc_vm.Lanes} pool of [lanes] lanes per mesh device —
    with a planning round between supersteps: finished lanes retire,
    pending members refill the freed lanes ({!Sched_plan.refill}), live
    members compact within a pool and migrate across pools
    ({!Sched_plan.move}), and then every pool executes one scheduled
    block. Refill and migration costs are charged through each device's
    {!Engine} — cross-shard steals additionally pay
    {!Collectives.p2p_time} on the receiving device — so the simulated
    clock reflects what moving work actually costs.

    {b Determinism.} Migration never perturbs results: the RNG keys every
    draw on the member identity the lane carries, per-lane state is
    exactly one row of every variable plus one pc-stack column, and the
    planner is a pure function of the observable lane occupancy. Outputs
    are therefore bitwise identical to the unsharded {!Pc_vm.run} under
    {e every} policy, mesh size and migration schedule — the property the
    migration differentials and [bench sched] gate enforce. To keep the
    schedule itself reproducible, the rounds run sequentially on the
    calling domain (shard 0 first); the measurement is the per-device
    simulated clock, not host wall time. {!Shard_vm} keeps the
    free-running one-domain-per-shard path for migration-free runs. *)

type config = {
  policy : Sched_policy.t;
  plan : Sched_plan.config;
      (** Planner knobs. [plan.refill] must be on — members enter
          execution through refills ({!Sched_plan.off} is rejected). *)
  lanes : int;  (** lanes per mesh device; capacity is [lanes × size mesh] *)
  mesh : Mesh.t;
  mode : Engine.mode option;
      (** [Some mode] prices the run on one engine per mesh device;
          [None] runs uncosted (differential tests). *)
  collective : Collectives.algorithm;
  max_steps : int;  (** per-pool superstep bound *)
  sink : Obs_sink.t option;
      (** Sees shard-tagged [Step]/[Occupancy] from every pool, each
          device's [Launched] spans, one {!Obs_sink.Migration} per
          applied move, and the closing [Collective] spans. *)
}

val default_config : config
(** [Earliest] policy, {!Sched_plan.default} plan, 8 lanes on a
    single-device mesh, uncosted. *)

type result = {
  outputs : Tensor.t list;
      (** Whole-batch layout (leading batch dimension, member order) —
          bitwise equal to [Pc_vm.run]'s outputs. *)
  counters : Engine.Counters.t;  (** summed over devices; zero if uncosted *)
  supersteps : int;  (** planning rounds *)
  vm_steps : int;  (** blocks executed, summed over pools *)
  refills : int;
  migrations : int;  (** applied moves, defrag and steals alike *)
  steals : int;  (** cross-shard moves only *)
  migration_bytes : float;
  compute_time : float;  (** max per-device simulated seconds *)
  collective_time : float;
      (** per-round sync all-reduce + final output all-gather *)
  sim_time : float;  (** [compute_time + collective_time] *)
}

val run :
  ?config:config ->
  Prim.registry ->
  Stack_ir.program ->
  batch:Tensor.t list ->
  result
(** Raises [Invalid_argument] on an empty batch, [lanes <= 0], or a plan
    with refills disabled; {!Pc_vm.Step_limit_exceeded} past
    [max_steps]. *)
