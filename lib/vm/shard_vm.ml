type partition = { offset : int; length : int }

let partition ~z ~shards =
  if z <= 0 then invalid_arg "Shard_vm.partition: batch must be positive";
  if shards <= 0 then invalid_arg "Shard_vm.partition: need at least one shard";
  let k = min shards z in
  let base = z / k and rem = z mod k in
  Array.init k (fun i ->
      let length = base + if i < rem then 1 else 0 in
      let offset = (i * base) + min i rem in
      { offset; length })

type config = {
  mesh : Mesh.t;
  mode : Engine.mode option;
  collective : Collectives.algorithm;
  sched : Sched_policy.t;
  max_steps : int;
  sink : Obs_sink.t option;
}

let default_config =
  {
    mesh = Mesh.gpu_pod ~n:1 ();
    mode = None;
    collective = Collectives.Ring;
    sched = Sched_policy.Earliest;
    max_steps = 100_000_000;
    sink = None;
  }

type result = {
  outputs : Tensor.t list;
  counters : Engine.Counters.t;
  instrument : Instrument.t;
  shard_times : float array;
  compute_time : float;
  collective_time : float;
  sim_time : float;
  supersteps : int;
}

(* The per-superstep convergence payload: every device contributes one
   "any member still live?" flag to an all-reduce. *)
let sync_bytes = 8.

let batch_size batch =
  match batch with
  | [] -> invalid_arg "Shard_vm: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Shard_vm: inputs must carry a leading batch dimension";
    (Tensor.shape first).(0)

let run ?(config = default_config) reg program ~batch =
  let z = batch_size batch in
  let parts = partition ~z ~shards:(Mesh.size config.mesh) in
  let sub_batch { offset; length } =
    let rows = Array.init length (fun i -> offset + i) in
    List.map (fun t -> Tensor.take_rows t rows) batch
  in
  (* One domain per shard; each runs an ordinary single-device VM over its
     sub-batch with its own engine and instrument, with lane identities
     offset so RNG streams match the unsharded run. *)
  let run_shard i part =
    let engine =
      Option.map
        (fun mode -> Engine.create ~device:(Mesh.device config.mesh i) ~mode ())
        config.mode
    in
    let instrument = Instrument.create () in
    let inputs = sub_batch part in
    (* Step/Occupancy events from shard [i] reach the user's sink re-tagged
       with the shard index; the sink fires from the shard's domain, so it
       must be domain-safe (a [Trace.sink] or [Obs_prof.sink] is). The same
       tagged sink is installed on the shard's private engine so its
       [Launched] spans are observable too — on the shard's own domain,
       which is how the profiler pairs them with this shard's steps. *)
    let sink = Option.map (Obs_sink.tag_shard i) config.sink in
    (match (engine, sink) with
    | Some engine, Some sink -> Engine.set_sink engine sink
    | _ -> ());
    fun () ->
      let outputs =
        match program with
        | `Pc p ->
          let config =
            {
              Pc_vm.default_config with
              sched = config.sched;
              max_steps = config.max_steps;
              engine;
              instrument = Some instrument;
              member_base = part.offset;
              sink;
            }
          in
          Pc_vm.run ~config reg p ~batch:inputs
        | `Local p ->
          let config =
            {
              Local_vm.default_config with
              sched = config.sched;
              max_steps = config.max_steps;
              engine;
              instrument = Some instrument;
              member_base = part.offset;
              sink;
            }
          in
          Local_vm.run ~config reg p ~batch:inputs
      in
      let snapshot =
        match engine with
        | Some e -> Engine.snapshot e
        | None -> { Engine.at = Engine.Counters.zero; ops = [] }
      in
      (outputs, snapshot, instrument)
  in
  (* Shard 0 runs on the calling domain while the tail shards run on
     spawned ones; all thunks capture their (copied) sub-batches before
     any shard starts executing. *)
  let thunks = Array.mapi run_shard parts in
  let tail =
    Array.to_list (Array.sub thunks 1 (Array.length thunks - 1))
    |> List.map Domain.spawn
  in
  let head =
    match thunks.(0) () with
    | r -> r
    | exception e ->
      (* Don't leak the spawned domains if the inline shard fails. *)
      List.iter (fun d -> try ignore (Domain.join d) with _ -> ()) tail;
      raise e
  in
  let shards = head :: List.map Domain.join tail in
  (* Deterministic merge: shard order is batch order, so concatenation
     reassembles exactly the unsharded layout. *)
  let outputs =
    match shards with
    | [] -> assert false
    | (first, _, _) :: _ ->
      List.mapi
        (fun i _ -> Tensor.concat_rows (List.map (fun (o, _, _) -> List.nth o i) shards))
        first
  in
  let counters =
    List.fold_left
      (fun acc (_, s, _) -> Engine.Counters.add acc s.Engine.at)
      Engine.Counters.zero shards
  in
  let instrument = Instrument.create () in
  List.iter (fun (_, _, ins) -> Instrument.merge ~into:instrument ins) shards;
  let shard_times =
    Array.of_list
      (List.map (fun (_, s, _) -> s.Engine.at.Engine.Counters.elapsed_seconds) shards)
  in
  let compute_time = Array.fold_left Float.max 0. shard_times in
  (* SPMD supersteps: every device steps its VM loop in lockstep until all
     shards drain, agreeing on termination by an all-reduced flag each
     superstep; the final outputs are all-gathered. *)
  let supersteps =
    List.fold_left
      (fun acc (_, _, ins) -> max acc (Instrument.blocks_executed ins))
      0 shards
  in
  let output_bytes =
    List.fold_left
      (fun acc t -> acc +. (8. *. float_of_int (Tensor.numel t)))
      0. outputs
  in
  let all_reduce_total =
    float_of_int supersteps
    *. Collectives.all_reduce_time config.mesh config.collective ~bytes:sync_bytes
  in
  let all_gather_total =
    Collectives.all_gather_time config.mesh config.collective ~bytes:output_bytes
  in
  let collective_time = all_reduce_total +. all_gather_total in
  (* The collective phases as spans on the mesh timeline: compute first
     (per-shard engines run [0, compute_time]), then the aggregated sync
     flags, then the final output gather. *)
  (match config.sink with
  | None -> ()
  | Some sink ->
    sink
      (Obs_sink.Collective
         {
           name = "all-reduce";
           bytes = sync_bytes *. float_of_int supersteps;
           t0 = compute_time;
           t1 = compute_time +. all_reduce_total;
         });
    sink
      (Obs_sink.Collective
         {
           name = "all-gather";
           bytes = output_bytes;
           t0 = compute_time +. all_reduce_total;
           t1 = compute_time +. collective_time;
         }));
  {
    outputs;
    counters;
    instrument;
    shard_times;
    compute_time;
    collective_time;
    sim_time = compute_time +. collective_time;
    supersteps;
  }
