(** Multi-device sharded execution: split the batch dimension across a
    {!Mesh} of simulated devices, one shard per device, each shard run by
    an ordinary single-device VM ({!Pc_vm} or {!Local_vm}) on its own
    OCaml 5 domain — so the batch runs genuinely in parallel on the host
    while the cost model prices it as SPMD execution on the mesh.

    Semantics are exactly the unsharded run's: each shard executes with
    {!Pc_vm.config.member_base} set to its batch offset, so every member
    draws the same RNG streams it would draw in the single-device run, and
    batch members are data-independent under masking execution — sharded
    outputs are bitwise identical to single-device outputs.

    Simulated time mirrors real SPMD execution: the devices proceed in
    lockstep supersteps (one VM scheduling step each), agreeing on
    termination through a per-superstep all-reduced convergence flag, and
    the run ends with an all-gather of the outputs. Hence

    {v
    sim_time = max over shards of shard compute time
             + supersteps × all_reduce(flag)
             + all_gather(outputs)
    v}

    where supersteps is the longest shard's scheduling-step count. *)

type partition = { offset : int; length : int }

val partition : z:int -> shards:int -> partition array
(** Contiguous, front-loaded split of [0..z-1] into [min shards z]
    non-empty parts: remainder members go to the leading shards. Raises
    [Invalid_argument] when [z <= 0] or [shards <= 0]. *)

type config = {
  mesh : Mesh.t;
  mode : Engine.mode option;
      (** price each shard on its mesh device in this mode; [None] runs
          without cost accounting (wall-clock benchmarking) *)
  collective : Collectives.algorithm;
  sched : Sched_policy.t;
  max_steps : int;
  sink : Obs_sink.t option;
      (** Observability seam threaded into each shard's VM: [Step] events
          arrive re-tagged with their shard index ({!Obs_sink.tag_shard}),
          and the mesh's collective phases are reported as [Collective]
          spans after the shards join. Shards run on separate domains, so
          the sink fires concurrently — it must be domain-safe (an
          [Obs.Trace.sink] is; it locks). Raising from a [Step] aborts
          that shard's superstep, the fault-injection seam. Default
          [None]. *)
}

val default_config : config
(** Single-device GPU mesh, no engine, ring collectives, earliest-block. *)

type result = {
  outputs : Tensor.t list;       (** reassembled full-batch outputs *)
  counters : Engine.Counters.t;  (** summed over shards *)
  instrument : Instrument.t;     (** merged over shards *)
  shard_times : float array;     (** per-shard simulated seconds *)
  compute_time : float;          (** max over shards *)
  collective_time : float;       (** sync flags + final output gather *)
  sim_time : float;              (** compute + collective *)
  supersteps : int;              (** longest shard's scheduling steps *)
}

val run :
  ?config:config ->
  Prim.registry ->
  [ `Pc of Stack_ir.program | `Local of Cfg.program ] ->
  batch:Tensor.t list ->
  result
(** Shard [batch] across [config.mesh], run every shard on its own domain,
    and merge. With an [n = 1] mesh this degenerates to the single-device
    run (zero collective cost). *)
