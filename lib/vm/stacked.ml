type t = {
  z : int;
  elem : Shape.t;
  row : int;
  mutable cap : int;
  mutable data : float array;  (* cap * z * row *)
  sp : int array;
  top : Tensor.t;
}

let create ~z ~elem ?(initial_depth = 4) () =
  if z <= 0 then invalid_arg "Stacked.create: batch size must be positive";
  let row = Shape.numel elem in
  {
    z;
    elem;
    row;
    cap = max 1 initial_depth;
    data = Array.make (max 1 initial_depth * z * row) 0.;
    sp = Array.make z 0;
    top = Tensor.zeros (Shape.concat_outer z elem);
  }

let z t = t.z
let elem t = t.elem
let row t = t.row
let top t = t.top

let write_top_masked t ~mask value =
  Tensor.blit_rows_masked ~mask ~src:value ~dst:t.top

let grow t =
  let cap' = t.cap * 2 in
  let data' = Array.make (cap' * t.z * t.row) 0. in
  Array.blit t.data 0 data' 0 (t.cap * t.z * t.row);
  t.cap <- cap';
  t.data <- data'

let slot t d b = ((d * t.z) + b) * t.row

let push t ~mask =
  if Array.length mask <> t.z then invalid_arg "Stacked.push: mask length";
  let need = ref 0 in
  Array.iteri (fun b m -> if m && t.sp.(b) >= !need then need := t.sp.(b) + 1) mask;
  while !need > t.cap do
    grow t
  done;
  let top_data = Tensor.data t.top in
  Array.iteri
    (fun b m ->
      if m then begin
        Array.blit top_data (b * t.row) t.data (slot t t.sp.(b) b) t.row;
        t.sp.(b) <- t.sp.(b) + 1
      end)
    mask

let pop t ~mask =
  if Array.length mask <> t.z then invalid_arg "Stacked.pop: mask length";
  let top_data = Tensor.data t.top in
  Array.iteri
    (fun b m ->
      if m then begin
        if t.sp.(b) = 0 then
          invalid_arg (Printf.sprintf "Stacked.pop: underflow for member %d" b);
        t.sp.(b) <- t.sp.(b) - 1;
        Array.blit t.data (slot t t.sp.(b) b) top_data (b * t.row) t.row
      end)
    mask

let depth t b = t.sp.(b)

let reset t =
  Array.fill t.sp 0 t.z 0;
  Array.fill (Tensor.data t.top) 0 (t.z * t.row) 0.

let reset_lane t b =
  if b < 0 || b >= t.z then invalid_arg "Stacked.reset_lane: lane out of range";
  t.sp.(b) <- 0;
  Array.fill (Tensor.data t.top) (b * t.row) t.row 0.
let max_depth t = Array.fold_left max 0 t.sp
let capacity t = t.cap

type lane = {
  l_elem : Shape.t;
  l_sp : int;
  l_frames : float array;  (* depths 0..sp-1, bottom first *)
  l_top : float array;
}

(* One member's complete column: saved frames below sp plus the cached
   top row. Together with the variable's masked-write discipline this is
   everything the member's future pops can observe, so capture/restore of
   a lane moves the member between batch slots bitwise-exactly. *)
let capture_lane t b =
  if b < 0 || b >= t.z then invalid_arg "Stacked.capture_lane: lane out of range";
  let frames = Array.make (t.sp.(b) * t.row) 0. in
  for d = 0 to t.sp.(b) - 1 do
    Array.blit t.data (slot t d b) frames (d * t.row) t.row
  done;
  {
    l_elem = Array.copy t.elem;
    l_sp = t.sp.(b);
    l_frames = frames;
    l_top = Array.sub (Tensor.data t.top) (b * t.row) t.row;
  }

let restore_lane t b lane =
  if b < 0 || b >= t.z then invalid_arg "Stacked.restore_lane: lane out of range";
  if not (Shape.equal lane.l_elem t.elem) then
    invalid_arg "Stacked.restore_lane: element shape mismatch";
  while lane.l_sp > t.cap do
    grow t
  done;
  t.sp.(b) <- lane.l_sp;
  for d = 0 to lane.l_sp - 1 do
    Array.blit lane.l_frames (d * t.row) t.data (slot t d b) t.row
  done;
  Array.blit lane.l_top 0 (Tensor.data t.top) (b * t.row) t.row

type image = {
  i_z : int;
  i_elem : Shape.t;
  i_sp : int array;
  i_frames : float array;
  i_top : float array;
}

(* Only the live frames are captured: member [b]'s saved rows d = 0..sp(b)-1,
   concatenated member-major. Rows above sp are dead (pops never read them),
   so dropping them keeps snapshots compact without losing bitwise fidelity
   of any future execution. *)
let capture t =
  let total = Array.fold_left ( + ) 0 t.sp in
  let frames = Array.make (total * t.row) 0. in
  let k = ref 0 in
  for b = 0 to t.z - 1 do
    for d = 0 to t.sp.(b) - 1 do
      Array.blit t.data (slot t d b) frames (!k * t.row) t.row;
      incr k
    done
  done;
  {
    i_z = t.z;
    i_elem = Array.copy t.elem;
    i_sp = Array.copy t.sp;
    i_frames = frames;
    i_top = Array.sub (Tensor.data t.top) 0 (t.z * t.row);
  }

let restore t img =
  if img.i_z <> t.z then invalid_arg "Stacked.restore: batch size mismatch";
  if not (Shape.equal img.i_elem t.elem) then
    invalid_arg "Stacked.restore: element shape mismatch";
  let need = Array.fold_left max 1 img.i_sp in
  while need > t.cap do
    grow t
  done;
  Array.blit img.i_sp 0 t.sp 0 t.z;
  let k = ref 0 in
  for b = 0 to t.z - 1 do
    for d = 0 to t.sp.(b) - 1 do
      Array.blit img.i_frames (!k * t.row) t.data (slot t d b) t.row;
      incr k
    done
  done;
  Array.blit img.i_top 0 (Tensor.data t.top) 0 (t.z * t.row)
