type t = {
  z : int;
  elem : Shape.t;
  row : int;
  mutable cap : int;
  mutable data : float array;  (* cap * z * row *)
  sp : int array;
  top : Tensor.t;
}

let create ~z ~elem ?(initial_depth = 4) () =
  if z <= 0 then invalid_arg "Stacked.create: batch size must be positive";
  let row = Shape.numel elem in
  {
    z;
    elem;
    row;
    cap = max 1 initial_depth;
    data = Array.make (max 1 initial_depth * z * row) 0.;
    sp = Array.make z 0;
    top = Tensor.zeros (Shape.concat_outer z elem);
  }

let z t = t.z
let elem t = t.elem
let row t = t.row
let top t = t.top

let write_top_masked t ~mask value =
  Tensor.blit_rows_masked ~mask ~src:value ~dst:t.top

let grow t =
  let cap' = t.cap * 2 in
  let data' = Array.make (cap' * t.z * t.row) 0. in
  Array.blit t.data 0 data' 0 (t.cap * t.z * t.row);
  t.cap <- cap';
  t.data <- data'

let slot t d b = ((d * t.z) + b) * t.row

let push t ~mask =
  if Array.length mask <> t.z then invalid_arg "Stacked.push: mask length";
  let need = ref 0 in
  Array.iteri (fun b m -> if m && t.sp.(b) >= !need then need := t.sp.(b) + 1) mask;
  while !need > t.cap do
    grow t
  done;
  let top_data = Tensor.data t.top in
  Array.iteri
    (fun b m ->
      if m then begin
        Array.blit top_data (b * t.row) t.data (slot t t.sp.(b) b) t.row;
        t.sp.(b) <- t.sp.(b) + 1
      end)
    mask

let pop t ~mask =
  if Array.length mask <> t.z then invalid_arg "Stacked.pop: mask length";
  let top_data = Tensor.data t.top in
  Array.iteri
    (fun b m ->
      if m then begin
        if t.sp.(b) = 0 then
          invalid_arg (Printf.sprintf "Stacked.pop: underflow for member %d" b);
        t.sp.(b) <- t.sp.(b) - 1;
        Array.blit t.data (slot t t.sp.(b) b) top_data (b * t.row) t.row
      end)
    mask

let depth t b = t.sp.(b)

let reset t =
  Array.fill t.sp 0 t.z 0;
  Array.fill (Tensor.data t.top) 0 (t.z * t.row) 0.

let reset_lane t b =
  if b < 0 || b >= t.z then invalid_arg "Stacked.reset_lane: lane out of range";
  t.sp.(b) <- 0;
  Array.fill (Tensor.data t.top) (b * t.row) t.row 0.
let max_depth t = Array.fold_left max 0 t.sp
let capacity t = t.cap
