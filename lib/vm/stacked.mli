(** Per-variable batched stacks with a cached top (optimization O4).

    The logical stack of batch member [b] is
    [data[0..sp(b)-1, b] ++ [top(b)]]: the cached top holds the current
    value, the body holds the saved frames beneath it. Reads therefore
    never gather; [push] scatters the top into the body (a caller save)
    and [pop] gathers the saved row back (a restore). Capacity grows by
    doubling — the paper's static depth limit D is only needed on
    genuinely static-shape hardware. *)

type t

val create : z:int -> elem:Shape.t -> ?initial_depth:int -> unit -> t
(** All tops start at zero, all stacks empty. *)

val z : t -> int
val elem : t -> Shape.t
val row : t -> int
(** Elements per member per stack level. *)

val top : t -> Tensor.t
(** The cached top, shape [z :: elem]. Shared buffer — do not mutate. *)

val write_top_masked : t -> mask:bool array -> Tensor.t -> unit
(** Replace the top value of the masked members ([value] is full-width). *)

val push : t -> mask:bool array -> unit
(** Duplicate the masked members' tops (save a frame). *)

val pop : t -> mask:bool array -> unit
(** Drop the masked members' tops, restoring the saved frame. Raises
    [Invalid_argument] on underflow — an unbalanced program. *)

val depth : t -> int -> int
(** Number of saved frames below the top for one member. *)

val reset : t -> unit
(** Drop all saved frames and zero the tops (reuse between runs). *)

val reset_lane : t -> int -> unit
(** Drop one member's saved frames and zero its top row, leaving every
    other member untouched — the state a fresh run would give that lane.
    Used when a serving runtime recycles a lane for a new request. *)

val max_depth : t -> int
val capacity : t -> int

(** One member's complete stack column — the saved frames below its
    stack pointer (bottom first) plus its cached top row. This is all a
    member's future pops can observe, so moving a lane between batch
    slots (or pools) through capture/restore preserves its execution
    bitwise. The lane-migration seam ({!Pc_vm.Lanes.export_lane}) is
    built on this. *)
type lane = {
  l_elem : Shape.t;
  l_sp : int;
  l_frames : float array;  (** depths [0..sp-1], bottom first *)
  l_top : float array;     (** the cached top row *)
}

val capture_lane : t -> int -> lane

val restore_lane : t -> int -> lane -> unit
(** Overwrite one member's column with a captured lane; capacity grows as
    needed, other members are untouched. Raises [Invalid_argument] if the
    lane index is out of range or the element shape disagrees. *)

(** Plain-data checkpoint of a stack: only the live frames (member [b]'s
    saved rows below [sp b], member-major) plus the cached top. Transparent
    so a serialization layer ([lib/resil]) can encode it without reaching
    into the stack's internals. *)
type image = {
  i_z : int;
  i_elem : Shape.t;
  i_sp : int array;
  i_frames : float array;  (** live saved frames, member-major *)
  i_top : float array;     (** the cached top, [z × row] *)
}

val capture : t -> image

val restore : t -> image -> unit
(** Overwrite [t]'s stacks and top with the image; capacity grows as
    needed. Every future push/pop/read sequence is then bitwise identical
    to one started from the captured stack. Raises [Invalid_argument] if
    [z] or the element shape disagree. *)
