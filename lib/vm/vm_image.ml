(* Shared plain-data checkpoint types for the batched VMs. Both Pc_vm and
   Pc_jit checkpoint into these shapes; the binary encoding lives entirely
   in lib/resil, keeping the dependency direction runtime <- resilience. *)

type pc = {
  pc_cap : int;
  pc_data : int array;  (* cap * z, depth-major, full array *)
  pc_sp : int array;
  pc_top : int array;
}

type storage =
  | Reg of Shape.t * float array  (* batched shape (leading z) + data *)
  | Msk of Shape.t * float array
  | Stk of Stacked.image

type store = (string * storage) list
