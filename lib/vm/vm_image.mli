(** Shared plain-data checkpoint types for the batched VMs.

    Both {!Pc_vm.Lanes} and {!Pc_jit} capture their execution state into
    these transparent shapes; binary serialization lives entirely in the
    resilience layer ([lib/resil]), which depends on the runtimes and not
    the other way round. Store entries are kept sorted by variable name so
    images of equal states are structurally equal ([=]). *)

(** The program-counter stack: the full depth-major data array (block
    indices are small ints, so no live-frame compaction is needed). *)
type pc = {
  pc_cap : int;
  pc_data : int array;  (** [cap × z], depth-major *)
  pc_sp : int array;
  pc_top : int array;
}

(** One variable's batched storage. [Reg]/[Msk] carry the full batched
    tensor (shape with leading [z] plus its data); [Stk] a stack image. *)
type storage =
  | Reg of Shape.t * float array
  | Msk of Shape.t * float array
  | Stk of Stacked.image

type store = (string * storage) list
(** Sorted by variable name. *)
