(** Shared helpers for the autobatching runtimes (mask bookkeeping and the
    cost model's byte accounting). *)

val bytes_per_elem : float
(** Every element is a float64. *)

val indices_of_mask : bool array -> int array
(** Positions of the set lanes, in order. *)

val count_mask : bool array -> int

val masked_write_bytes : lanes:int -> row:int -> float
(** Traffic of a masked write in a static-shape (XLA-style) system: a
    select reads old and new and writes the result. *)

val stack_move_bytes : lanes:int -> row:int -> float
(** Traffic of a batched stack push/pop: one row per lane moves between
    the stack body and the cached top, read plus write. *)

val elem_shape_of_batched : Tensor.t -> Shape.t
(** Drop the leading batch dimension. *)

val all_members : int -> int array
(** [[|0; 1; ...; z-1|]] — the identity lane-to-member map. *)
