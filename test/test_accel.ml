(* Tests for the simulated accelerator engine: the cost arithmetic is the
   basis of the Figure 5 reproduction, so check it exactly. *)

let t = Alcotest.test_case
let check_f = Alcotest.(check (float 1e-15))

let tiny_device =
  {
    Device.name = "tiny";
    kernel_launch_overhead = 1.;
    fused_launch_overhead = 10.;
    host_op_overhead = 0.5;
    flops_per_sec = 100.;
    bytes_per_sec = 50.;
    fused_flops_multiplier = 2.;
  }

let test_eager_block_cost () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Eager () in
  Engine.charge_block e ~ops:[ ("a", 200.); ("b", 100.) ] ~control_ops:2 ~traffic_bytes:100.;
  (* 4 launches × (1 + 0.5) + 300/100 + 100/50 = 6 + 3 + 2 = 11 *)
  check_f "eager time" 11. (Engine.elapsed e);
  let c = (Engine.snapshot e).Engine.at in
  Alcotest.(check int) "kernels" 4 c.Engine.Counters.kernel_launches;
  Alcotest.(check int) "host ops" 4 c.Engine.Counters.host_ops;
  Alcotest.(check int) "blocks" 1 c.Engine.Counters.blocks;
  check_f "flops" 300. c.Engine.Counters.flops;
  check_f "traffic" 100. c.Engine.Counters.traffic_bytes

let test_fused_block_cost () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Fused () in
  Engine.charge_block e ~ops:[ ("a", 200.); ("b", 100.) ] ~control_ops:5 ~traffic_bytes:100.;
  (* 10 + 300/(100×2) + 2 = 13.5; control free inside fusion. *)
  check_f "fused time" 13.5 (Engine.elapsed e);
  Alcotest.(check int) "one fused launch" 1 ((Engine.snapshot e).Engine.at).Engine.Counters.fused_launches;
  Alcotest.(check int) "no eager kernels" 0 ((Engine.snapshot e).Engine.at).Engine.Counters.kernel_launches

let test_hybrid_block_cost () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Hybrid () in
  Engine.charge_block e ~ops:[ ("a", 200.) ] ~control_ops:2 ~traffic_bytes:0.;
  (* 10 + 2×(1+0.5) + 200/200 = 14 *)
  check_f "hybrid time" 14. (Engine.elapsed e);
  Alcotest.(check int) "fused" 1 ((Engine.snapshot e).Engine.at).Engine.Counters.fused_launches;
  Alcotest.(check int) "control kernels" 2 ((Engine.snapshot e).Engine.at).Engine.Counters.kernel_launches

let test_kernel_and_call () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Eager () in
  Engine.charge_kernel e ~name:"k" ~flops:100.;
  (* 1 + 0.5 + 1 = 2.5 *)
  check_f "kernel time" 2.5 (Engine.elapsed e);
  Engine.charge_host_call e;
  (* + 4 × 0.5 *)
  check_f "host call time" 4.5 (Engine.elapsed e);
  Alcotest.(check int) "host calls" 1 ((Engine.snapshot e).Engine.at).Engine.Counters.host_calls

let test_traffic_and_reset () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Fused () in
  Engine.charge_traffic e ~bytes:25.;
  check_f "traffic time" 0.5 (Engine.elapsed e);
  Engine.reset e;
  check_f "reset time" 0. (Engine.elapsed e);
  Alcotest.(check int) "reset counters" 0 ((Engine.snapshot e).Engine.at).Engine.Counters.blocks

let test_tally () =
  let e = Engine.create ~device:tiny_device ~mode:Engine.Eager () in
  Engine.charge_block e ~ops:[ ("grad", 1.); ("grad", 1.); ("add", 1.) ] ~control_ops:0
    ~traffic_bytes:0.;
  Engine.charge_kernel e ~name:"grad" ~flops:1.;
  Alcotest.(check (list (pair string int))) "tally sorted by name"
    [ ("add", 1); ("grad", 3) ] (Engine.snapshot e).Engine.ops

let test_device_presets () =
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) (d.Device.name ^ " overheads nonneg") true
        (d.Device.kernel_launch_overhead >= 0.
        && d.Device.fused_launch_overhead >= 0.
        && d.Device.host_op_overhead >= 0.);
      Alcotest.(check bool) (d.Device.name ^ " throughput positive") true
        (d.Device.flops_per_sec > 0. && d.Device.bytes_per_sec > 0.
       && d.Device.fused_flops_multiplier >= 1.))
    [ Device.gpu; Device.cpu; Device.stan_cpu ];
  Alcotest.(check bool) "gpu out-throughputs cpu" true
    (Device.gpu.Device.flops_per_sec > Device.cpu.Device.flops_per_sec);
  Alcotest.(check bool) "stan has zero overhead" true
    (Device.stan_cpu.Device.kernel_launch_overhead = 0.)

let prop_time_monotone =
  QCheck.Test.make ~name:"engine time is monotone in work" ~count:100
    (QCheck.pair QCheck.(float_range 0. 1e6) QCheck.(float_range 0. 1e6))
    (fun (f1, f2) ->
      let time_for f =
        let e = Engine.create ~device:tiny_device ~mode:Engine.Fused () in
        Engine.charge_block e ~ops:[ ("x", f) ] ~control_ops:1 ~traffic_bytes:0.;
        Engine.elapsed e
      in
      (f1 <= f2) = (time_for f1 <= time_for f2) || time_for f1 = time_for f2)

let suites =
  [
    ( "accel",
      [
        t "eager block cost" `Quick test_eager_block_cost;
        t "fused block cost" `Quick test_fused_block_cost;
        t "hybrid block cost" `Quick test_hybrid_block_cost;
        t "kernel and host call" `Quick test_kernel_and_call;
        t "traffic and reset" `Quick test_traffic_and_reset;
        t "per-op tally" `Quick test_tally;
        t "device presets" `Quick test_device_presets;
        QCheck_alcotest.to_alcotest prop_time_monotone;
      ] );
  ]
