(* Tests for the reverse-mode autodiff tape. *)

let t = Alcotest.test_case

let grad_close ?(tol = 1e-5) name got want =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" name (Tensor.to_string got) (Tensor.to_string want))
    true
    (Tensor.allclose ~rtol:tol ~atol:tol got want)

let test_simple_chain () =
  (* f(x) = sum ((2x + 1)^2); f'(x) = 4(2x+1). *)
  let x = Tensor.of_list [ 0.; 1.; -2. ] in
  let g =
    Ad.grad1
      (fun _tape v ->
        Ad.sum (Ad.square (Ad.add_scalar (Ad.mul_scalar v 2.) 1.)))
      x
  in
  grad_close "chain rule" g (Tensor.of_list [ 4.; 12.; -12. ])

let test_binary_ops_vs_fd () =
  let x = Tensor.of_list [ 0.3; -0.7; 1.2; 0.05 ] in
  let check name build f_prim =
    let g = Ad.grad1 (fun tape v -> build tape v) x in
    let fd = Ad.finite_diff f_prim x in
    grad_close name g fd
  in
  check "mul self"
    (fun _tape v -> Ad.sum (Ad.mul v v))
    (fun x -> Tensor.item (Tensor.sum (Tensor.mul x x)));
  check "div by const vec"
    (fun tape v ->
      let c = Ad.const tape (Tensor.of_list [ 2.; 3.; 4.; 5. ]) in
      Ad.sum (Ad.div v c))
    (fun x -> Tensor.item (Tensor.sum (Tensor.div x (Tensor.of_list [ 2.; 3.; 4.; 5. ]))));
  check "exp" (fun _tape v -> Ad.sum (Ad.exp v))
    (fun x -> Tensor.item (Tensor.sum (Tensor.exp x)));
  check "tanh" (fun _tape v -> Ad.sum (Ad.tanh v))
    (fun x -> Tensor.item (Tensor.sum (Tensor.tanh x)));
  check "sigmoid" (fun _tape v -> Ad.sum (Ad.sigmoid v))
    (fun x -> Tensor.item (Tensor.sum (Tensor.sigmoid x)));
  check "log_sigmoid" (fun _tape v -> Ad.sum (Ad.log_sigmoid v))
    (fun x -> Tensor.item (Tensor.sum (Tensor.log_sigmoid x)));
  check "neg+sub"
    (fun tape v ->
      let c = Ad.const tape (Tensor.of_list [ 1.; 1.; 1.; 1. ]) in
      Ad.sum (Ad.sub (Ad.neg v) c))
    (fun x ->
      Tensor.item (Tensor.sum (Tensor.sub (Tensor.neg x) (Tensor.ones [| 4 |]))))

let test_positive_domain_ops () =
  let x = Tensor.of_list [ 0.5; 1.5; 3. ] in
  let g = Ad.grad1 (fun _ v -> Ad.sum (Ad.log v)) x in
  grad_close "log" g (Tensor.map (fun v -> 1. /. v) x);
  let g2 = Ad.grad1 (fun _ v -> Ad.sum (Ad.sqrt v)) x in
  let fd = Ad.finite_diff (fun x -> Tensor.item (Tensor.sum (Tensor.sqrt x))) x in
  grad_close "sqrt" g2 fd

let test_dot_matvec_matmul () =
  let x = Tensor.of_list [ 1.; -2.; 0.5 ] in
  let y = Tensor.of_list [ 3.; 0.; -1. ] in
  let tape = Ad.new_tape () in
  let vx = Ad.input tape x and vy = Ad.input tape y in
  let out = Ad.dot vx vy in
  (match Ad.grad ~output:out ~inputs:[ vx; vy ] with
  | [ gx; gy ] ->
    grad_close "d dot / dx = y" gx y;
    grad_close "d dot / dy = x" gy x
  | _ -> Alcotest.fail "two grads");
  let a = Tensor.create [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let g =
    Ad.grad1
      (fun tape v ->
        let va = Ad.const tape a in
        Ad.sum (Ad.matvec va v))
      x
  in
  let fd = Ad.finite_diff (fun x -> Tensor.item (Tensor.sum (Tensor.matvec a x))) x in
  grad_close "matvec wrt x" g fd;
  (* matmul: d/dB sum(A B) = Aᵀ 1. *)
  let b0 = Tensor.create [| 3; 2 |] [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 |] in
  let gb =
    Ad.grad1
      (fun tape v ->
        let va = Ad.const tape a in
        Ad.sum (Ad.matmul va v))
      b0
  in
  let fdb =
    Ad.finite_diff (fun b -> Tensor.item (Tensor.sum (Tensor.matmul a b))) b0
  in
  grad_close "matmul wrt B" gb fdb

let test_broadcast_adjoint_reduction () =
  (* Scalar broadcast against a vector: the scalar's gradient is the sum
     over the broadcast lanes. *)
  let s0 = Tensor.scalar 2. in
  let v = Tensor.of_list [ 1.; 2.; 3. ] in
  let g =
    Ad.grad1
      (fun tape s ->
        let vv = Ad.const tape v in
        Ad.sum (Ad.mul s vv))
      s0
  in
  grad_close "broadcast scalar grad" g (Tensor.scalar 6.)

let test_fan_out_accumulates () =
  (* x used twice: f = sum(x*x + x); f' = 2x + 1. *)
  let x = Tensor.of_list [ 0.5; -1. ] in
  let g = Ad.grad1 (fun _ v -> Ad.sum (Ad.add (Ad.mul v v) v)) x in
  grad_close "fan-out" g (Tensor.of_list [ 2.; -1. ])

let test_unused_input_zero_grad () =
  let tape = Ad.new_tape () in
  let x = Ad.input tape (Tensor.of_list [ 1.; 2. ]) in
  let y = Ad.input tape (Tensor.of_list [ 3.; 4. ]) in
  let out = Ad.sum x in
  (match Ad.grad ~output:out ~inputs:[ x; y ] with
  | [ _; gy ] -> grad_close "unused input" gy (Tensor.zeros [| 2 |])
  | _ -> Alcotest.fail "two grads")

let test_grad_errors () =
  let tape = Ad.new_tape () in
  let x = Ad.input tape (Tensor.of_list [ 1.; 2. ]) in
  Alcotest.check_raises "non-scalar output"
    (Invalid_argument "Ad.grad: output must be a one-element tensor") (fun () ->
      ignore (Ad.grad ~output:x ~inputs:[ x ]));
  let other = Ad.new_tape () in
  let y = Ad.input other (Tensor.scalar 1.) in
  Alcotest.check_raises "mixed tapes"
    (Invalid_argument "Ad: operands from different tapes") (fun () ->
      ignore (Ad.add x y))

let test_model_gradients_vs_ad () =
  (* The logistic-regression hand gradient equals the AD gradient of the
     hand logp. *)
  let data = Logistic_model.synth ~n:50 ~dim:7 () in
  let m = Logistic_model.model_of_data data in
  let x = data.Logistic_model.x and y = data.Logistic_model.y in
  let beta = Tensor.init [| 7 |] (fun i -> 0.1 *. float_of_int (i.(0) - 3)) in
  let ad_grad =
    Ad.grad1
      (fun tape b ->
        let vx = Ad.const tape x and vy = Ad.const tape y in
        let z = Ad.matvec vx b in
        let ll =
          Ad.sum (Ad.add (Ad.log_sigmoid (Ad.neg z)) (Ad.mul vy z))
        in
        Ad.add ll (Ad.mul_scalar (Ad.dot b b) (-0.5)))
      beta
  in
  grad_close ~tol:1e-8 "logistic grad = AD grad" (m.Model.grad beta) ad_grad;
  (* And the Gaussian. *)
  let gt = Gaussian_model.ground_truth ~dim:6 () in
  let gm = Gaussian_model.model ~dim:6 () in
  let q = Tensor.init [| 6 |] (fun i -> Stdlib.sin (float_of_int i.(0))) in
  let ad_g =
    Ad.grad1
      (fun tape v ->
        let prec = Ad.const tape gt.Gaussian_model.precision in
        Ad.mul_scalar (Ad.dot v (Ad.matvec prec v)) (-0.5))
      q
  in
  grad_close ~tol:1e-8 "gaussian grad = AD grad" (gm.Model.grad q) ad_g

let prop_grad_matches_fd =
  (* Random small compositions of smooth ops checked against finite
     differences. *)
  QCheck.Test.make ~name:"AD gradient matches finite differences" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 5)
           (list_size (int_range 2 5) (float_range (-1.5) 1.5))))
    (fun (variant, xs) ->
      let x = Tensor.of_list xs in
      let build tape v =
        match variant with
        | 1 -> Ad.sum (Ad.tanh (Ad.mul v v))
        | 2 -> Ad.sum (Ad.sigmoid (Ad.add v (Ad.mul_scalar v 2.)))
        | 3 -> Ad.dot v v
        | 4 -> Ad.sum (Ad.exp (Ad.mul_scalar (Ad.square v) (-0.5)))
        | _ ->
          let c = Ad.const tape (Tensor.full (Tensor.shape (Ad.value v)) 0.7) in
          Ad.sum (Ad.mul (Ad.tanh v) c)
      in
      let prim x =
        let tape = Ad.new_tape () in
        Tensor.item (Ad.value (build tape (Ad.input tape x)))
      in
      let g = Ad.grad1 build x in
      let fd = Ad.finite_diff prim x in
      Tensor.allclose ~rtol:1e-4 ~atol:1e-5 g fd)

let suites =
  [
    ( "ad",
      [
        t "chain rule" `Quick test_simple_chain;
        t "binary ops vs finite diff" `Quick test_binary_ops_vs_fd;
        t "positive-domain ops" `Quick test_positive_domain_ops;
        t "dot, matvec, matmul" `Quick test_dot_matvec_matmul;
        t "broadcast adjoint reduction" `Quick test_broadcast_adjoint_reduction;
        t "fan-out accumulates" `Quick test_fan_out_accumulates;
        t "unused input zero grad" `Quick test_unused_input_zero_grad;
        t "error handling" `Quick test_grad_errors;
        t "model gradients vs AD" `Quick test_model_gradients_vs_ad;
        QCheck_alcotest.to_alcotest prop_grad_matches_fd;
      ] );
  ]
