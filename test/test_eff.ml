(* Tests for the effect-handler model frontend (lib/eff, DESIGN.md S22):
   elaboration mechanics, handler-composition laws (QCheck), and the
   bitwise equivalence of the migrated models across every runtime. *)

let t = Alcotest.test_case

(* A small two-latent model used by the handler-law properties. *)
let toy_y = [| 0.5; -0.2; 1.0 |]

let toy_spec () =
  let open Lang in
  let mu = Eff.sample "mu" (Dist.Normal (flt 0., flt 2.)) in
  let s = Eff.sample "s" (Dist.Exponential (flt 1.)) in
  Eff.observe ~shape:[| 3 |] "y" (Dist.Normal (mu, flt 1.)) (vec toy_y);
  [ mu; s ]

let log_2pi = Stdlib.log (2. *. Float.pi)

(* Hand-written normalized joint density of [toy_spec]. *)
let toy_logp mu s =
  let prior_mu =
    (-0.5 *. (mu /. 2.) *. (mu /. 2.)) -. Stdlib.log 2. -. (0.5 *. log_2pi)
  in
  let prior_s = -.s in
  let lik =
    Array.fold_left
      (fun acc y -> acc -. (0.5 *. (y -. mu) *. (y -. mu)) -. (0.5 *. log_2pi))
      0. toy_y
  in
  prior_mu +. prior_s +. lik

let compile_el el =
  Autobatch.compile ~registry:el.Eff.el_registry
    ~input_shapes:(Eff.input_shapes el) el.Eff.el_program

let lp_of el outs = List.nth outs el.Eff.el_lp_index

(* ---------- elaboration mechanics ---------- *)

let test_trace_structure () =
  let el = Eff.log_density toy_spec in
  Alcotest.(check (list string)) "params" [ "mu"; "s" ]
    (List.map fst el.Eff.el_params);
  Alcotest.(check (list string)) "latents" [ "mu"; "s" ]
    (List.map fst (Eff.latent_sites el));
  Alcotest.(check int) "three sites" 3 (List.length el.Eff.el_trace);
  let kinds = List.map (fun r -> r.Eff.r_kind) el.Eff.el_trace in
  Alcotest.(check bool) "kinds" true
    (kinds = [ Eff.Latent; Eff.Latent; Eff.Observed ]);
  Alcotest.(check bool) "all scored" true
    (List.for_all (fun r -> r.Eff.r_scored) el.Eff.el_trace);
  Alcotest.(check (option int)) "no counter in bind mode" None
    el.Eff.el_cnt_index

let test_log_density_matches_hand () =
  let el = Eff.log_density toy_spec in
  let compiled = compile_el el in
  let mus = Tensor.of_list [ -1.2; 0.; 0.7; 2.5 ] in
  let ss = Tensor.of_list [ 0.3; 1.; 2.; 0.1 ] in
  let lp = lp_of el (Autobatch.run_pc compiled ~batch:[ mus; ss ]) in
  for i = 0 to 3 do
    Alcotest.(check (float 1e-10))
      (Printf.sprintf "lp member %d" i)
      (toy_logp (Tensor.data mus).(i) (Tensor.data ss).(i))
      (Tensor.data lp).(i)
  done

let test_runtime_matrix_bitwise () =
  (* The elaborated log-density program of every zoo model produces
     bitwise-identical outputs on pc, jit, local and sharded. *)
  List.iter
    (fun name ->
      let m = Zoo.resolve ~dim:6 name in
      let el = Model.log_density m in
      let compiled = compile_el el in
      let stream = Splitmix.Stream.create 7L in
      let z = 4 in
      let batch =
        List.map
          (fun shape ->
            Tensor.init
              (Array.append [| z |] shape)
              (fun _ -> Splitmix.Stream.normal stream))
          (Eff.input_shapes el)
      in
      let pc = Autobatch.run_pc compiled ~batch in
      let check arm outs =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s bitwise" name arm)
          true
          (List.for_all2 Tensor.equal pc outs)
      in
      check "jit" (Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch);
      check "local" (Autobatch.run_local compiled ~batch);
      check "shard"
        (Autobatch.run_sharded
           ~config:
             { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
           compiled ~batch)
          .Shard_vm.outputs)
    Zoo.known

let test_elaborated_density_vs_hand () =
  (* Log-density differences of the elaborated program agree with the
     hand closures (additive constants cancel); the gaussian spec is
     engineered to match the hand density exactly. *)
  List.iter
    (fun name ->
      let m = Zoo.resolve ~dim:6 name in
      let el = Model.log_density m in
      let compiled = compile_el el in
      let stream = Splitmix.Stream.create 11L in
      let z = 3 in
      let qs =
        Tensor.init [| z; m.Model.dim |] (fun _ ->
            0.5 *. Splitmix.Stream.normal stream)
      in
      (* The zoo models are single-site-per-latent-block: map the flat
         q rows onto the elaborated parameter blocks in order. *)
      let batch =
        let col = ref 0 in
        List.map
          (fun shape ->
            let w = if Array.length shape = 0 then 1 else shape.(0) in
            let t =
              Tensor.init
                (Array.append [| z |] shape)
                (fun idx ->
                  let j = if Array.length idx > 1 then idx.(1) else 0 in
                  Tensor.get qs [| idx.(0); !col + j |])
            in
            col := !col + w;
            t)
          (Eff.input_shapes el)
      in
      let lp = lp_of el (Autobatch.run_pc compiled ~batch) in
      let hand b = m.Model.logp (Tensor.slice_row qs b) in
      if name = "gaussian" then
        for b = 0 to z - 1 do
          Alcotest.(check (float 0.))
            (Printf.sprintf "gaussian lp %d exact" b)
            (hand b) (Tensor.data lp).(b)
        done
      else
        let d_el = (Tensor.data lp).(1) -. (Tensor.data lp).(0) in
        let d_hand = hand 1 -. hand 0 in
        Alcotest.(check bool)
          (Printf.sprintf "%s density delta" name)
          true
          (Float.abs (d_el -. d_hand)
          < 1e-8 *. (1. +. Float.abs d_hand)))
    Zoo.known

let test_simulate_counts_draws () =
  let el = Eff.simulate toy_spec in
  Alcotest.(check (list string)) "only the counter is an input" [ "__cnt0" ]
    (List.map fst el.Eff.el_params);
  let compiled = compile_el el in
  let z = 5 in
  let outs = Autobatch.run_pc compiled ~batch:[ Tensor.zeros [| z |] ] in
  (match el.Eff.el_cnt_index with
  | None -> Alcotest.fail "draw-mode program must expose its counter"
  | Some i ->
    let cnt = List.nth outs i in
    for b = 0 to z - 1 do
      Alcotest.(check (float 0.)) "two draws" 2. (Tensor.data cnt).(b)
    done);
  (* Members draw from distinct streams. *)
  let mu = List.hd outs in
  Alcotest.(check bool) "members differ" true
    ((Tensor.data mu).(0) <> (Tensor.data mu).(1));
  (* The exponential site is positive. *)
  let s = List.nth outs 1 in
  Tensor.fold (fun () v -> Alcotest.(check bool) "s > 0" true (v > 0.)) () s

let test_simulate_bitwise_across_runtimes () =
  let el = Eff.simulate toy_spec in
  let compiled = compile_el el in
  let z = 6 in
  let batch = [ Tensor.zeros [| z |] ] in
  let pc = Autobatch.run_pc compiled ~batch in
  Alcotest.(check bool) "jit" true
    (List.for_all2 Tensor.equal pc
       (Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch));
  Alcotest.(check bool) "local" true
    (List.for_all2 Tensor.equal pc (Autobatch.run_local compiled ~batch))

let test_half_cauchy_positive () =
  let el =
    Eff.simulate (fun () ->
        [ Eff.sample "tau" (Dist.Half_cauchy (Lang.flt 2.)) ])
  in
  let compiled = compile_el el in
  let outs = Autobatch.run_pc compiled ~batch:[ Tensor.zeros [| 32 |] ] in
  Tensor.fold
    (fun () v -> Alcotest.(check bool) "tau > 0" true (v > 0.))
    () (List.hd outs)

let test_branch_divergence () =
  let el =
    Eff.log_density (fun () ->
        let open Lang in
        let open Lang.Infix in
        let c = Eff.param "c" in
        let x =
          Eff.branch (c > flt 0.) (fun () -> flt 2.) (fun () -> flt 3.)
        in
        [ x ])
  in
  let compiled = compile_el el in
  let outs =
    Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ 1.; -1.; 0.5 ] ]
  in
  Alcotest.(check bool) "divergent branch values" true
    (Tensor.equal (List.hd outs) (Tensor.of_list [ 2.; 3.; 2. ]))

let test_plate_prefixes () =
  let el =
    Eff.log_density (fun () ->
        let open Lang in
        Eff.plate "grp" 2 (fun _ ->
            Eff.sample "z" (Dist.Normal (flt 0., flt 1.))))
  in
  Alcotest.(check (list string)) "plate site names" [ "grp.0.z"; "grp.1.z" ]
    (List.map (fun r -> r.Eff.r_site) el.Eff.el_trace)

let test_errors () =
  Alcotest.check_raises "sample outside a handler"
    (Invalid_argument
       "Eff.sample: no model is being elaborated (call from within a body \
        passed to Eff.run / log_density / simulate)") (fun () ->
      ignore (Eff.sample "x" Dist.Uniform));
  (match
     Eff.log_density (fun () ->
         let open Lang in
         let a = Eff.sample "x" (Dist.Normal (flt 0., flt 1.)) in
         let b = Eff.sample "x" (Dist.Normal (flt 0., flt 1.)) in
         [ a; b ])
   with
  | _ -> Alcotest.fail "duplicate site accepted"
  | exception Invalid_argument _ -> ())

(* ---------- handler-composition laws (QCheck) ---------- *)

let float_in lo hi =
  QCheck.make
    ~print:string_of_float
    QCheck.Gen.(float_range lo hi)

let prop_substitute_consistency =
  (* substitute ∘ trace: pinning a latent to a constant yields the same
     log density (bitwise) as passing that constant as the parameter. *)
  QCheck.Test.make ~name:"substitute consistency" ~count:25
    (QCheck.pair (float_in (-2.5) 2.5) (float_in 0.05 3.))
    (fun (m, sv) ->
      let open_el = Eff.log_density toy_spec in
      let closed_el =
        Eff.log_density (fun () ->
            Eff.substitute [ ("s", Lang.flt sv) ] toy_spec)
      in
      List.map fst closed_el.Eff.el_params = [ "mu" ]
      &&
      let lp_open =
        Tensor.item
          (lp_of open_el
             (Autobatch.run_pc (compile_el open_el)
                ~batch:[ Tensor.of_list [ m ]; Tensor.of_list [ sv ] ]))
      in
      let lp_closed =
        Tensor.item
          (lp_of closed_el
             (Autobatch.run_pc (compile_el closed_el)
                ~batch:[ Tensor.of_list [ m ] ]))
      in
      lp_open = lp_closed)

let prop_condition_matches_substitute =
  (* Under the trace handler, condition and substitute score the same
     terms — the log density is bitwise identical; only the recorded
     site kind differs. *)
  QCheck.Test.make ~name:"condition = substitute on lp" ~count:25
    (QCheck.pair (float_in (-2.5) 2.5) (float_in 0.05 3.))
    (fun (m, sv) ->
      let v = Lang.flt sv in
      let sub = Eff.log_density (fun () -> Eff.substitute [ ("s", v) ] toy_spec) in
      let con = Eff.log_density (fun () -> Eff.condition [ ("s", v) ] toy_spec) in
      let kind el =
        (List.find (fun r -> r.Eff.r_site = "s") el.Eff.el_trace).Eff.r_kind
      in
      kind sub = Eff.Latent
      && kind con = Eff.Observed
      &&
      let lp el =
        Tensor.item
          (lp_of el
             (Autobatch.run_pc (compile_el el) ~batch:[ Tensor.of_list [ m ] ]))
      in
      lp sub = lp con)

let prop_seed_determinism =
  (* The seed handler is a pure function of the seed: same seed, same
     program, same draws — different seed, different draws. *)
  QCheck.Test.make ~name:"seed determinism" ~count:15 QCheck.int64
    (fun seed ->
      let run seed =
        let el = Eff.simulate ~seed toy_spec in
        (el.Eff.el_program, Autobatch.run_pc (compile_el el)
             ~batch:[ Tensor.zeros [| 3 |] ])
      in
      let p1, o1 = run seed in
      let p2, o2 = run seed in
      let _, o3 = run (Int64.add seed 1L) in
      p1 = p2
      && List.for_all2 Tensor.equal o1 o2
      && not (Tensor.equal (List.hd o1) (List.hd o3)))

let prop_substitute_under_seed =
  (* substitute ∘ seed: a pinned latent is not drawn — the counter
     drops by its tick and the site takes the pinned value. *)
  QCheck.Test.make ~name:"substitute removes draw" ~count:25
    (float_in (-2.) 2.)
    (fun v ->
      let el =
        Eff.simulate (fun () ->
            Eff.substitute [ ("mu", Lang.flt v) ] toy_spec)
      in
      let outs =
        Autobatch.run_pc (compile_el el) ~batch:[ Tensor.zeros [| 2 |] ]
      in
      let cnt =
        match el.Eff.el_cnt_index with
        | Some i -> Tensor.item (Tensor.slice_row (List.nth outs i) 0)
        | None -> -1.
      in
      cnt = 1. && (Tensor.data (List.hd outs)).(0) = v)

(* ---------- migrated models: bitwise vs the pre-migration pipeline ---------- *)

(* The Model.t redesign kept every hand density closure: the NUTS
   programs built from the migrated models must still match the
   single-chain reference bitwise on every runtime. *)
let test_nuts_bitwise_all_models () =
  List.iter
    (fun name ->
      let model = Zoo.resolve ~dim:4 name in
      let reg, key = Nuts_dsl.setup ~model () in
      let q0 = Tensor.zeros [| model.Model.dim |] in
      let eps = 0.2 in
      let cfg = Nuts.default_config ~eps () in
      let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
      let compiled =
        Autobatch.compile ~registry:reg
          ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
      in
      let z = 3 and n_iter = 3 in
      let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:z () in
      let pc = Autobatch.run_pc compiled ~batch in
      let arms =
        [
          ("jit", Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch);
          ("local", Autobatch.run_local compiled ~batch);
          ( "shard",
            (Autobatch.run_sharded
               ~config:
                 { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
               compiled ~batch)
              .Shard_vm.outputs );
        ]
      in
      List.iter
        (fun (arm, outs) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s = pc" name arm)
            true
            (List.for_all2 Tensor.equal pc outs))
        arms;
      for member = 0 to z - 1 do
        let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
        Alcotest.(check bool)
          (Printf.sprintf "%s member %d vs reference" name member)
          true
          (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd pc) member))
      done)
    Zoo.known

let suites =
  [
    ( "eff-elaborate",
      [
        t "trace structure" `Quick test_trace_structure;
        t "log density matches hand density" `Quick
          test_log_density_matches_hand;
        t "runtime matrix bitwise" `Quick test_runtime_matrix_bitwise;
        t "elaborated density vs model closures" `Quick
          test_elaborated_density_vs_hand;
        t "simulate draws and counts" `Quick test_simulate_counts_draws;
        t "simulate bitwise across runtimes" `Quick
          test_simulate_bitwise_across_runtimes;
        t "half-cauchy support" `Quick test_half_cauchy_positive;
        t "branch divergence" `Quick test_branch_divergence;
        t "plate prefixes" `Quick test_plate_prefixes;
        t "error paths" `Quick test_errors;
      ] );
    ( "eff-handlers",
      [
        QCheck_alcotest.to_alcotest prop_substitute_consistency;
        QCheck_alcotest.to_alcotest prop_condition_matches_substitute;
        QCheck_alcotest.to_alcotest prop_seed_determinism;
        QCheck_alcotest.to_alcotest prop_substitute_under_seed;
      ] );
    ( "eff-migration",
      [ t "NUTS bitwise on all models" `Quick test_nuts_bitwise_all_models ] );
  ]
