(* Superblock fusion (DESIGN.md §S19): region selection, legality, and
   end-to-end bitwise identity with strictly fewer supersteps. *)

let t = Alcotest.test_case
let reg = Prim.standard ()

(* ---------- helpers ---------- *)

let blk ops term = { Cfg.ops; term }
let cst v x = Cfg.Const_op { dst = v; value = Tensor.scalar x }

let mk_func ?(params = []) ?(results = []) name blocks =
  { Cfg.name; params; result_vars = results; blocks = Array.of_list blocks }

let one_func_prog fname fn = { Cfg.funcs = [ (fname, fn) ]; entry = fname }

let supersteps compiled ~batch =
  let e = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let out =
    Autobatch.run_pc
      ~config:{ Pc_vm.default_config with engine = Some e }
      compiled ~batch
  in
  (out, (Engine.snapshot e).Engine.at.Engine.Counters.blocks)

let check_bitwise label expected got =
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (label ^ ": bitwise identical")
        true (Tensor.equal a b))
    expected got

let report_of compiled =
  match compiled.Autobatch.fuse with
  | Some r -> r
  | None -> Alcotest.fail "compile ~fuse produced no fusion report"

(* ---------- chain detection ---------- *)

let test_chain_fusion () =
  let fn =
    mk_func ~results:[ "a" ] "f"
      [
        blk [ cst "a" 1. ] (Cfg.Jump 1);
        blk [ cst "b" 2. ] (Cfg.Jump 2);
        blk [ cst "c" 3. ] Cfg.Return;
      ]
  in
  let p', prov, st = Fuse_cfg.run reg (one_func_prog "f" fn) in
  let fn' = Cfg.entry_func p' in
  Alcotest.(check int) "one megablock" 1 (Array.length fn'.Cfg.blocks);
  Alcotest.(check int) "two merges" 2 st.Fuse_cfg.chains_fused;
  Alcotest.(check int) "ops concatenated" 3 (List.length fn'.Cfg.blocks.(0).Cfg.ops);
  match prov with
  | [ (_, groups) ] ->
    Alcotest.(check (list int)) "provenance in order" [ 0; 1; 2 ] groups.(0)
  | _ -> Alcotest.fail "expected one function's provenance"

let test_chain_respects_shared_successor () =
  (* Block 1 has two predecessors: merging it would duplicate work into
     one of them and change the superstep trace of the other. *)
  let fn =
    mk_func ~params:[ "p" ] ~results:[ "a" ] "f"
      [
        blk [] (Cfg.Branch { cond = "p"; if_true = 1; if_false = 1 });
        blk [ cst "a" 1. ] Cfg.Return;
      ]
  in
  (* The equal-arm branch first collapses to a jump; only then is the
     chain single-predecessor and fusable — exercising the pass order. *)
  let p', _, st = Fuse_cfg.run reg (one_func_prog "f" fn) in
  Alcotest.(check int) "threaded" 1 st.Fuse_cfg.jumps_threaded;
  Alcotest.(check int) "then fused" 1 st.Fuse_cfg.chains_fused;
  Alcotest.(check int) "single block"
    1
    (Array.length (Cfg.entry_func p').Cfg.blocks)

(* ---------- if-conversion legality ---------- *)

let diamond ~predefine =
  (* 0: branch p -> 1 | 2;  1: y=1 -> 3;  2: z=10 -> 3;  3: return y,z *)
  let pre = if predefine then [ cst "y" 0.; cst "z" 0. ] else [] in
  mk_func ~params:[ "p" ] ~results:[ "y"; "z" ] "f"
    [
      blk pre (Cfg.Branch { cond = "p"; if_true = 1; if_false = 2 });
      blk [ cst "y" 1. ] (Cfg.Jump 3);
      blk [ cst "z" 10. ] (Cfg.Jump 3);
      blk [] Cfg.Return;
    ]

let test_diamond_definite_assignment () =
  (* One-arm definitions live at the join: without a prior binding, a
     select would read storage no lane ever wrote — conversion must be
     rejected. With the binding it is legal and fires. *)
  let _, _, st = Fuse_cfg.run reg (one_func_prog "f" (diamond ~predefine:false)) in
  Alcotest.(check int) "rejected without binding" 0 st.Fuse_cfg.branches_converted;
  let p', _, st = Fuse_cfg.run reg (one_func_prog "f" (diamond ~predefine:true)) in
  Alcotest.(check int) "accepted with binding" 1 st.Fuse_cfg.branches_converted;
  let fn' = Cfg.entry_func p' in
  Alcotest.(check int) "flattened to one block" 1 (Array.length fn'.Cfg.blocks);
  let selects =
    List.length
      (List.filter
         (function Cfg.Prim_op { prim = "select"; _ } -> true | _ -> false)
         fn'.Cfg.blocks.(0).Cfg.ops)
  in
  Alcotest.(check int) "one select per live merged var" 2 selects

let test_diamond_is_bitwise () =
  let prog =
    let open Lang in
    program ~main:"m"
      [
        func "m" ~params:[ "p" ]
          [
            assign "x" (flt 0.);
            if_
              (prim "gt" [ var "p"; flt 0. ])
              [ assign "x" (prim "add" [ var "p"; flt 1. ]) ]
              [ assign "x" (prim "sub" [ var "p"; flt 1. ]) ];
            return_ [ var "x" ];
          ];
      ]
  in
  let input_shapes = [ Shape.scalar ] in
  let plain = Autobatch.compile ~registry:reg ~input_shapes prog in
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options ~input_shapes prog
  in
  Alcotest.(check bool)
    "a branch was converted" true
    ((report_of fused).Fuse.cfg_stats.Fuse_cfg.branches_converted >= 1);
  let batch = [ Tensor.of_list [ -2.; -0.5; 0.; 1.; 3. ] ] in
  let expected, plain_steps = supersteps plain ~batch in
  let got, fused_steps = supersteps fused ~batch in
  check_bitwise "if-converted" expected got;
  Alcotest.(check bool)
    (Printf.sprintf "fewer supersteps (%d -> %d)" plain_steps fused_steps)
    true (fused_steps < plain_steps)

(* ---------- RNG non-reordering ---------- *)

let rng_prog =
  let open Lang in
  program ~main:"m"
    [
      func "m" ~params:[ "p" ]
        [
          assign "cnt" (flt 0.);
          assign "x" (flt 0.);
          if_
            (prim "gt" [ var "p"; flt 0. ])
            [ assign "x" (prim "uniform" [ var "cnt" ]) ]
            [ assign "x" (flt 0.5) ];
          return_ [ var "x" ];
        ];
    ]

let test_rng_not_speculated () =
  let input_shapes = [ Shape.scalar ] in
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options ~input_shapes
      rng_prog
  in
  Alcotest.(check int)
    "RNG arm blocks if-conversion by default" 0
    (report_of fused).Fuse.cfg_stats.Fuse_cfg.branches_converted;
  (* Opting in is still bitwise: counter-based RNG is a pure function of
     (member, counter), so a speculated draw the lane discards cannot
     perturb the draws it keeps. *)
  let speculating =
    Autobatch.compile ~registry:reg
      ~fuse:{ Fuse.default_options with Fuse.speculate_rng = true }
      ~input_shapes rng_prog
  in
  Alcotest.(check bool)
    "converted when opted in" true
    ((report_of speculating).Fuse.cfg_stats.Fuse_cfg.branches_converted >= 1);
  let plain = Autobatch.compile ~registry:reg ~input_shapes rng_prog in
  let batch = [ Tensor.of_list [ -1.; 0.; 2.; 5. ] ] in
  check_bitwise "speculated RNG"
    (Autobatch.run_pc plain ~batch)
    (Autobatch.run_pc speculating ~batch)

(* ---------- latch rotation ---------- *)

let loop_prog =
  let open Lang in
  program ~main:"m"
    [
      func "m" ~params:[ "p" ]
        [
          assign "i" (flt 8.);
          assign "acc" (flt 0.);
          while_
            (prim "gt" [ var "i"; flt 0. ])
            [
              assign "acc" (prim "add" [ var "acc"; prim "mul" [ var "i"; var "p" ] ]);
              assign "i" (prim "sub" [ var "i"; flt 1. ]);
            ];
          return_ [ var "acc" ];
        ];
    ]

let test_latch_rotation () =
  let input_shapes = [ Shape.scalar ] in
  let plain = Autobatch.compile ~registry:reg ~input_shapes loop_prog in
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options ~input_shapes
      loop_prog
  in
  Alcotest.(check bool)
    "a latch was rotated" true
    ((report_of fused).Fuse.cfg_stats.Fuse_cfg.latches_rotated >= 1);
  let batch = [ Tensor.of_list [ 1.; 2.; 3.; 4. ] ] in
  let expected, plain_steps = supersteps plain ~batch in
  let got, fused_steps = supersteps fused ~batch in
  check_bitwise "rotated loop" expected got;
  Alcotest.(check bool)
    (Printf.sprintf "fewer supersteps (%d -> %d)" plain_steps fused_steps)
    true (fused_steps < plain_steps)

let test_profile_gates_rotation () =
  (* A profile that never saw [m] keeps the duplicating rewrites off it. *)
  let input_shapes = [ Shape.scalar ] in
  let cold = Fuse_profile.of_blocks [ (("somewhere_else", 0), 5.) ] in
  let gated =
    Autobatch.compile ~registry:reg
      ~fuse:{ Fuse.default_options with Fuse.profile = Some cold }
      ~input_shapes loop_prog
  in
  Alcotest.(check int)
    "cold function not rotated" 0
    (report_of gated).Fuse.cfg_stats.Fuse_cfg.latches_rotated;
  let hot = Fuse_profile.of_blocks [ (("m", 1), 5.) ] in
  let steered =
    Autobatch.compile ~registry:reg
      ~fuse:{ Fuse.default_options with Fuse.profile = Some hot }
      ~input_shapes loop_prog
  in
  Alcotest.(check bool)
    "hot function rotated" true
    ((report_of steered).Fuse.cfg_stats.Fuse_cfg.latches_rotated >= 1)

(* ---------- call-entry duplication (fib) ---------- *)

let fib_prog =
  let open Lang in
  program ~main:"main"
    [
      func "main" ~params:[ "n" ]
        [ call [ "r" ] "fib" [ var "n" ]; return_ [ var "r" ] ];
      func "fib" ~params:[ "k" ]
        [
          if_
            (prim "lt" [ var "k"; flt 2. ])
            [ return_ [ var "k" ] ]
            [
              call [ "a" ] "fib" [ prim "sub" [ var "k"; flt 1. ] ];
              call [ "b" ] "fib" [ prim "sub" [ var "k"; flt 2. ] ];
              return_ [ prim "add" [ var "a"; var "b" ] ];
            ];
        ];
    ]

let fib_batch = [ Tensor.of_list [ 3.; 4.; 5.; 6.; 2.; 7. ] ]

let test_fib_entry_duplication () =
  let input_shapes = [ Shape.scalar ] in
  let plain = Autobatch.compile ~registry:reg ~input_shapes fib_prog in
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options ~input_shapes
      fib_prog
  in
  let r = report_of fused in
  Alcotest.(check bool)
    "entries duplicated" true
    (r.Fuse.stack_stats.Fuse_stack.entries_duplicated >= 1);
  Alcotest.(check bool)
    "a fused call-and-branch terminator exists" true
    (Array.exists
       (fun (b : Stack_ir.block) ->
         match b.Stack_ir.term with
         | Stack_ir.Spushbranch _ -> true
         | _ -> false)
       fused.Autobatch.stack.Stack_ir.blocks);
  let expected, plain_steps = supersteps plain ~batch:fib_batch in
  let got, fused_steps = supersteps fused ~batch:fib_batch in
  check_bitwise "pc" expected got;
  Alcotest.(check bool)
    (Printf.sprintf "fewer supersteps (%d -> %d)" plain_steps fused_steps)
    true (fused_steps < plain_steps);
  check_bitwise "local" expected (Autobatch.run_local fused ~batch:fib_batch);
  check_bitwise "jit" expected
    (Pc_jit.run (Autobatch.jit fused ~batch:6) ~batch:fib_batch);
  check_bitwise "shard" expected
    (Autobatch.run_sharded
       ~config:{ Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:3 () }
       fused ~batch:fib_batch)
      .Shard_vm.outputs

(* ---------- profiles ---------- *)

let test_profile_folded () =
  let p =
    Fuse_profile.of_folded "main#0 1\nmain;fib;fib#2 12.5\nmain;fib 2\n\nnoise\n"
  in
  Alcotest.(check (float 1e-9)) "fib weight" 14.5 (Fuse_profile.func_weight p "fib");
  Alcotest.(check (float 1e-9))
    "fib block 2" 12.5
    (Fuse_profile.block_weight p ~fn:"fib" ~block:2);
  Alcotest.(check (float 1e-9)) "main weight" 1. (Fuse_profile.func_weight p "main");
  match Fuse_profile.funcs p with
  | (heaviest, _) :: _ -> Alcotest.(check string) "heaviest first" "fib" heaviest
  | [] -> Alcotest.fail "no functions parsed"

let test_profile_json_and_sniffing () =
  let json = {|[{"fn": "fib", "block": 2, "weight": 3}, {"fn": "fib"}]|} in
  (match Fuse_profile.parse json with
  | Ok p ->
    Alcotest.(check (float 1e-9)) "summed" 4. (Fuse_profile.func_weight p "fib")
  | Error e -> Alcotest.fail e);
  (match Fuse_profile.parse "main#0 2\n" with
  | Ok p ->
    Alcotest.(check (float 1e-9)) "folded sniffed" 2. (Fuse_profile.func_weight p "main")
  | Error e -> Alcotest.fail e);
  match Fuse_profile.parse {|{"blocks": [{"fn": "m", "weight": 1}]}|} with
  | Ok p -> Alcotest.(check (float 1e-9)) "wrapped" 1. (Fuse_profile.func_weight p "m")
  | Error e -> Alcotest.fail e

(* ---------- report plumbing ---------- *)

let test_report_json () =
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options
      ~input_shapes:[ Shape.scalar ] fib_prog
  in
  let doc = Fuse.to_json (report_of fused) in
  (match Obs_json.member "report" doc with
  | Some (Obs_json.Str "fuse") -> ()
  | _ -> Alcotest.fail "report envelope");
  (match Obs_json.member "stack" doc with
  | Some (Obs_json.Obj _) -> ()
  | _ -> Alcotest.fail "stack section");
  match Obs_json.member "func_ops" doc with
  | Some (Obs_json.Obj fields) ->
    Alcotest.(check bool)
      "per-function op counts present" true
      (List.mem_assoc "fib" fields)
  | _ -> Alcotest.fail "func_ops section"

let test_fused_dot_export () =
  let fused =
    Autobatch.compile ~registry:reg ~fuse:Fuse.default_options
      ~input_shapes:[ Shape.scalar ] loop_prog
  in
  let groups = (report_of fused).Fuse.megablocks in
  let dot = Dot.fused_cfg_to_dot ~groups fused.Autobatch.cfg in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "megablock cluster rendered" true
    (contains "megablock" dot)

let suites =
  [
    ( "fuse",
      [
        t "chain fusion" `Quick test_chain_fusion;
        t "threading unlocks chains" `Quick test_chain_respects_shared_successor;
        t "diamond definite assignment" `Quick test_diamond_definite_assignment;
        t "diamond bitwise + fewer supersteps" `Quick test_diamond_is_bitwise;
        t "RNG never speculated by default" `Quick test_rng_not_speculated;
        t "latch rotation" `Quick test_latch_rotation;
        t "profile gates rotation" `Quick test_profile_gates_rotation;
        t "fib entry duplication across runtimes" `Quick test_fib_entry_duplication;
        t "folded profile parsing" `Quick test_profile_folded;
        t "json profile parsing" `Quick test_profile_json_and_sniffing;
        t "report json" `Quick test_report_json;
        t "fused dot export" `Quick test_fused_dot_export;
      ] );
  ]
