(* Tests for the experiment harness: the reproduced figures must have the
   paper's qualitative shape on a tiny instance, so regressions in the
   cost model or the runtimes show up in `dune runtest`, not only when
   reading bench output. *)

let t = Alcotest.test_case

let tiny_scale =
  {
    Figure5.default_scale with
    Figure5.batch_sizes = [ 1; 8; 64 ];
    n_data = 120;
    dim = 10;
    n_iter = 2;
  }

let points = lazy (Figure5.run ~scale:tiny_scale ())

let rate_exn points ~strategy ~batch =
  match Figure5.rate points ~strategy ~batch with
  | Some r -> r
  | None -> Alcotest.failf "missing point %s@%d" strategy batch

let test_figure5_complete () =
  let points = Lazy.force points in
  List.iter
    (fun strategy ->
      List.iter
        (fun batch ->
          let r = rate_exn points ~strategy ~batch in
          Alcotest.(check bool)
            (Printf.sprintf "%s@%d positive" strategy batch)
            true (r > 0.))
        tiny_scale.Figure5.batch_sizes)
    Figure5.strategies

let test_figure5_batched_scale () =
  (* Every batched strategy must gain at least 4x from batch 1 -> 64
     (the paper's headline: linear scaling while overhead dominates). *)
  let points = Lazy.force points in
  List.iter
    (fun strategy ->
      let r1 = rate_exn points ~strategy ~batch:1 in
      let r64 = rate_exn points ~strategy ~batch:64 in
      Alcotest.(check bool)
        (Printf.sprintf "%s scales (%.0f -> %.0f)" strategy r1 r64)
        true
        (r64 > 4. *. r1))
    [ "pc-xla-gpu"; "pc-xla-cpu"; "local-eager-gpu"; "local-eager-cpu"; "hybrid-cpu" ]

let test_figure5_flat_baselines () =
  let points = Lazy.force points in
  List.iter
    (fun strategy ->
      let r1 = rate_exn points ~strategy ~batch:1 in
      let r64 = rate_exn points ~strategy ~batch:64 in
      Alcotest.(check (float 1e-9)) (strategy ^ " flat") r1 r64)
    [ "eager-unbatched"; "stan" ]

let test_figure5_orderings () =
  let points = Lazy.force points in
  (* Paper: fully-fused autobatching beats eager local autobatching on the
     same device. *)
  List.iter
    (fun batch ->
      Alcotest.(check bool)
        (Printf.sprintf "pc-xla-gpu > local-eager-gpu at %d" batch)
        true
        (rate_exn points ~strategy:"pc-xla-gpu" ~batch
        > rate_exn points ~strategy:"local-eager-gpu" ~batch);
      Alcotest.(check bool)
        (Printf.sprintf "hybrid-cpu > local-eager-cpu at %d" batch)
        true
        (rate_exn points ~strategy:"hybrid-cpu" ~batch
        > rate_exn points ~strategy:"local-eager-cpu" ~batch))
    tiny_scale.Figure5.batch_sizes

let test_figure6_shape () =
  let stats = Figure6.run ~dim:12 ~batch_sizes:[ 1; 8; 32 ] ~n_iter:6 () in
  let find b =
    List.find (fun (p : Figure6.point) -> p.Figure6.batch = b) stats.Figure6.points
  in
  (* Batch of one has no synchronization waste. *)
  Alcotest.(check (float 1e-9)) "local util at z=1" 1. (find 1).Figure6.local_util;
  Alcotest.(check (float 1e-9)) "pc util at z=1" 1. (find 1).Figure6.pc_util;
  (* The paper's claim: pc recovers utilization local static leaves on the
     table, markedly so by a few dozen chains. *)
  List.iter
    (fun b ->
      let p = find b in
      Alcotest.(check bool)
        (Printf.sprintf "pc >= local at z=%d (%.3f vs %.3f)" b p.Figure6.pc_util
           p.Figure6.local_util)
        true
        (p.Figure6.pc_util >= p.Figure6.local_util))
    [ 8; 32 ];
  let p32 = find 32 in
  Alcotest.(check bool)
    (Printf.sprintf "pc recovers ≥1.5x at z=32 (%.3f vs %.3f)" p32.Figure6.pc_util
       p32.Figure6.local_util)
    true
    (p32.Figure6.pc_util > 1.5 *. p32.Figure6.local_util);
  Alcotest.(check bool) "local leaves a factor ≥2 at z=32" true
    (p32.Figure6.local_util < 0.5);
  (* Trajectory-length dispersion drives the waste. *)
  Alcotest.(check bool) "max/mean trajectory ratio > 1.5" true
    (stats.Figure6.max_grads_per_trajectory
    > 1.5 *. stats.Figure6.mean_grads_per_trajectory)

let test_ablation_masking_vs_gather () =
  let tbl = Ablations.masking_vs_gather ~dim:10 ~batch:8 ~n_iter:2 () in
  Alcotest.(check int) "three rows" 3 (List.length tbl.Ablations.rows);
  (* Masking issues more gradient lanes than it uses; gather issues
     exactly what it uses. *)
  match tbl.Ablations.rows with
  | [ mask_row; gather_row; adaptive_row ] ->
    let nth r i = List.nth r i in
    let useful_mask = int_of_string (nth mask_row 4) in
    let issued_mask = int_of_string (nth mask_row 5) in
    let useful_gather = int_of_string (nth gather_row 4) in
    let issued_gather = int_of_string (nth gather_row 5) in
    let useful_adaptive = int_of_string (nth adaptive_row 4) in
    let issued_adaptive = int_of_string (nth adaptive_row 5) in
    Alcotest.(check bool) "masking wastes lanes" true (issued_mask > useful_mask);
    Alcotest.(check int) "gather issues = useful" useful_gather issued_gather;
    Alcotest.(check int) "same useful work" useful_mask useful_gather;
    (* Adaptive sits between the two extremes. *)
    Alcotest.(check int) "adaptive same useful work" useful_mask useful_adaptive;
    Alcotest.(check bool) "adaptive wastes no more than masking" true
      (issued_adaptive <= issued_mask);
    Alcotest.(check bool) "adaptive issues at least gather" true
      (issued_adaptive >= issued_gather)
  | _ -> Alcotest.fail "unexpected table"

let test_ablation_schedulers () =
  let tbl = Ablations.schedulers ~dim:10 ~batch:8 ~n_iter:2 () in
  Alcotest.(check int) "three legacy heuristics" 3 (List.length Sched_policy.legacy);
  Alcotest.(check int) "one row per policy" 5 (List.length tbl.Ablations.rows);
  Alcotest.(check (list string)) "rows cover Sched_policy.all in order"
    (List.map Sched_policy.to_string Sched_policy.all)
    (List.map List.hd tbl.Ablations.rows)

let test_ablation_stack_opts () =
  let tbl = Ablations.stack_optimizations ~dim:10 ~batch:8 ~n_iter:2 () in
  Alcotest.(check int) "five variants" 5 (List.length tbl.Ablations.rows);
  (* Disabling the save-liveness filter must increase pushes. *)
  let pushes_of name =
    let row = List.find (fun r -> List.hd r = name) tbl.Ablations.rows in
    int_of_string (List.nth row 2)
  in
  Alcotest.(check bool) "O3 off pushes more" true
    (pushes_of "no-save-liveness (O3)" > pushes_of "all-opts")

let suites =
  [
    ( "harness",
      [
        t "figure 5 complete grid" `Slow test_figure5_complete;
        t "figure 5 batched strategies scale" `Slow test_figure5_batched_scale;
        t "figure 5 flat baselines" `Slow test_figure5_flat_baselines;
        t "figure 5 strategy orderings" `Slow test_figure5_orderings;
        t "figure 6 utilization shape" `Slow test_figure6_shape;
        t "ablation: masking vs gather" `Slow test_ablation_masking_vs_gather;
        t "ablation: schedulers" `Slow test_ablation_schedulers;
        t "ablation: stack optimizations" `Slow test_ablation_stack_opts;
      ] );
  ]

(* ---------- Batched_sampler ---------- *)

let test_sampler_moments_mode () =
  let model = Gaussian_model.model ~rho:0.4 ~dim:4 () in
  let s =
    Batched_sampler.run ~model ~chains:32 ~n_iter:60 ~n_burn:20 ()
  in
  Alcotest.(check int) "kept draws" (40 * 32) s.Batched_sampler.kept_draws;
  Alcotest.(check bool) "no ess in moments mode" true
    (Option.is_none s.Batched_sampler.ess);
  for d = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "mean[%d] ~ 0 (got %.3f)" d (Tensor.data s.Batched_sampler.mean).(d))
      true
      (Float.abs (Tensor.data s.Batched_sampler.mean).(d) < 0.25);
    Alcotest.(check bool)
      (Printf.sprintf "var[%d] ~ 1 (got %.3f)" d
         (Tensor.data s.Batched_sampler.variance).(d))
      true
      (Float.abs ((Tensor.data s.Batched_sampler.variance).(d) -. 1.) < 0.4)
  done

let test_sampler_samples_mode () =
  let model = Gaussian_model.model ~rho:0.4 ~dim:3 () in
  let s =
    Batched_sampler.run ~collect:`Samples ~model ~chains:6 ~n_iter:80 ~n_burn:20 ()
  in
  (match s.Batched_sampler.split_rhat with
  | None -> Alcotest.fail "expected rhat"
  | Some r ->
    Array.iteri
      (fun d v ->
        Alcotest.(check bool) (Printf.sprintf "rhat[%d] < 1.2 (got %.3f)" d v) true
          (v < 1.2))
      r);
  (match s.Batched_sampler.ess with
  | None -> Alcotest.fail "expected ess"
  | Some e ->
    Array.iter
      (fun v -> Alcotest.(check bool) "ess positive" true (v > 10.)) e);
  match s.Batched_sampler.samples with
  | None -> Alcotest.fail "expected samples"
  | Some rows ->
    Alcotest.(check int) "chains" 6 (Array.length rows);
    Alcotest.(check int) "iters" 80 (Array.length rows.(0))

let test_sampler_modes_agree_bitwise () =
  (* The same chain visits the same positions in both collection modes:
     trajectory-at-a-time driving only changes scheduling, not values. *)
  let model = Gaussian_model.model ~rho:0.4 ~dim:3 () in
  let m =
    Batched_sampler.run ~adapt:false ~model ~chains:3 ~n_iter:6 ~n_burn:1 ()
  in
  let s =
    Batched_sampler.run ~adapt:false ~collect:`Samples ~model ~chains:3 ~n_iter:6
      ~n_burn:1 ()
  in
  (* Compare via the final positions recoverable from the samples mode. *)
  ignore m;
  match s.Batched_sampler.samples with
  | None -> Alcotest.fail "expected samples"
  | Some rows ->
    let reg, key = Nuts_dsl.setup ~model () in
    ignore reg;
    let cfg =
      Nuts.default_config ~mass_minv:s.Batched_sampler.minv
        ~eps:s.Batched_sampler.eps ()
    in
    for c = 0 to 2 do
      let r =
        Nuts.sample_chain cfg ~model ~key ~member:c ~q0:(Tensor.zeros [| 3 |])
          ~n_iter:6
      in
      Alcotest.(check bool)
        (Printf.sprintf "chain %d final position matches reference" c)
        true
        (Tensor.equal r.Nuts.final_q rows.(c).(5))
    done

let test_sampler_validation () =
  let model = Gaussian_model.model ~dim:2 () in
  Alcotest.check_raises "bad burn"
    (Invalid_argument "Batched_sampler.run: bad chain/iteration counts") (fun () ->
      ignore (Batched_sampler.run ~model ~chains:2 ~n_iter:5 ~n_burn:5 ()))

let sampler_suite =
  ( "batched-sampler",
    [
      t "moments mode" `Slow test_sampler_moments_mode;
      t "samples mode with diagnostics" `Slow test_sampler_samples_mode;
      t "modes agree bitwise with reference" `Quick test_sampler_modes_agree_bitwise;
      t "validation" `Quick test_sampler_validation;
    ] )

let suites = suites @ [ sampler_suite ]
