let () =
  Alcotest.run "autobatch"
    (List.concat
       [
         Test_shape.suites;
         Test_tensor.suites;
         Test_cholesky.suites;
         Test_rng.suites;
         Test_accel.suites;
         Test_ir.suites;
         Test_parser.suites;
         Test_tools.suites;
         Test_optimize.suites;
         Test_corpus.suites;
         Test_vm.suites;
         Test_pipeline.suites;
         Test_random_programs.suites;
         Test_ad.suites;
         Test_models.suites;
         Test_mcmc.suites;
         Test_nuts_equivalence.suites;
         Test_shard.suites;
         Test_harness.suites;
       ])
