(* AUTOBATCH_FAST=1 (the @runtest-fast alias) is the pre-commit tier:
   it drops the slow suites — the example corpus and random-program
   fuzzing — and every test case registered as `Slow. *)
let fast =
  match Sys.getenv_opt "AUTOBATCH_FAST" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let drop_slow_cases suites =
  List.filter_map
    (fun (name, cases) ->
      match List.filter (fun (_, speed, _) -> speed = `Quick) cases with
      | [] -> None
      | quick -> Some (name, quick))
    suites

let () =
  let suites =
    List.concat
      [
        Test_shape.suites;
        Test_tensor.suites;
        Test_cholesky.suites;
        Test_rng.suites;
        Test_accel.suites;
        Test_ir.suites;
        Test_parser.suites;
        Test_tools.suites;
        Test_optimize.suites;
        (if fast then [] else Test_corpus.suites);
        Test_vm.suites;
        Test_fuse.suites;
        Test_pipeline.suites;
        (if fast then [] else Test_random_programs.suites);
        Test_ad.suites;
        Test_eff.suites;
        Test_models.suites;
        Test_mcmc.suites;
        Test_nuts_equivalence.suites;
        Test_shard.suites;
        Test_sched.suites;
        Test_obs.suites;
        Test_span.suites;
        Test_prof.suites;
        Test_harness.suites;
        Test_serve.suites;
        Test_resil.suites;
        Test_tenant.suites;
        (if fast then [] else Test_resil.fuzz_suites);
      ]
  in
  Alcotest.run "autobatch" (if fast then drop_slow_cases suites else suites)
