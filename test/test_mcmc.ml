(* Tests for the MCMC layer: leapfrog physics, diagnostics, dual
   averaging, HMC, and the reference NUTS sampler's statistical
   correctness. *)

let t = Alcotest.test_case

let gaussian dim = Gaussian_model.model ~rho:0.5 ~dim ()

(* ---------- leapfrog ---------- *)

let test_leapfrog_reversibility () =
  let m = gaussian 4 in
  let q = Tensor.of_list [ 0.3; -0.4; 0.8; 0.1 ] in
  let p = Tensor.of_list [ 1.; -0.5; 0.2; -0.7 ] in
  let q1, p1 = Leapfrog.steps ~grad:m.Model.grad ~n:7 ~eps:0.11 ~q ~p in
  (* Integrate back with negated momentum. *)
  let q2, p2 = Leapfrog.steps ~grad:m.Model.grad ~n:7 ~eps:0.11 ~q:q1 ~p:(Tensor.neg p1) in
  Alcotest.(check bool) "position returns" true
    (Tensor.allclose ~rtol:1e-9 ~atol:1e-9 q2 q);
  Alcotest.(check bool) "momentum negates" true
    (Tensor.allclose ~rtol:1e-9 ~atol:1e-9 (Tensor.neg p2) p)

let test_leapfrog_energy_conservation () =
  let m = gaussian 4 in
  let q = Tensor.of_list [ 0.3; -0.4; 0.8; 0.1 ] in
  let p = Tensor.of_list [ 1.; -0.5; 0.2; -0.7 ] in
  let h0 = -.Leapfrog.log_joint ~logp:m.Model.logp ~q ~p in
  let q1, p1 = Leapfrog.steps ~grad:m.Model.grad ~n:100 ~eps:0.01 ~q ~p in
  let h1 = -.Leapfrog.log_joint ~logp:m.Model.logp ~q:q1 ~p:p1 in
  Alcotest.(check bool)
    (Printf.sprintf "energy drift small: %g vs %g" h0 h1)
    true
    (Float.abs (h1 -. h0) < 1e-3);
  (* The error scales roughly as eps^2: a 10x larger step is much worse. *)
  let q2, p2 = Leapfrog.steps ~grad:m.Model.grad ~n:10 ~eps:0.1 ~q ~p in
  let h2 = -.Leapfrog.log_joint ~logp:m.Model.logp ~q:q2 ~p:p2 in
  Alcotest.(check bool) "order of accuracy" true
    (Float.abs (h2 -. h0) > Float.abs (h1 -. h0))

let test_leapfrog_bad_n () =
  let m = gaussian 2 in
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Leapfrog.steps: n must be positive") (fun () ->
      ignore
        (Leapfrog.steps ~grad:m.Model.grad ~n:0 ~eps:0.1 ~q:(Tensor.zeros [| 2 |])
           ~p:(Tensor.zeros [| 2 |])))

(* ---------- diagnostics ---------- *)

let test_mean_variance () =
  Alcotest.(check (float 1e-12)) "mean" 2. (Diagnostics.mean [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-12)) "variance" 1. (Diagnostics.variance [| 1.; 2.; 3. |]);
  Alcotest.(check (float 0.)) "variance single" 0. (Diagnostics.variance [| 5. |])

let test_ess () =
  let stream = Splitmix.Stream.create 3L in
  let n = 4000 in
  let iid = Array.init n (fun _ -> Splitmix.Stream.normal stream) in
  let e = Diagnostics.ess iid in
  Alcotest.(check bool)
    (Printf.sprintf "iid ESS ~ n (got %.0f)" e)
    true
    (e > 0.7 *. float_of_int n);
  (* A strongly autocorrelated AR(1) chain has a much smaller ESS. *)
  let ar = Array.make n 0. in
  for i = 1 to n - 1 do
    ar.(i) <- (0.95 *. ar.(i - 1)) +. (0.1 *. Splitmix.Stream.normal stream)
  done;
  let e_ar = Diagnostics.ess ar in
  Alcotest.(check bool)
    (Printf.sprintf "AR(1) ESS << n (got %.0f)" e_ar)
    true
    (e_ar < 0.2 *. float_of_int n)

let test_split_rhat () =
  let stream = Splitmix.Stream.create 4L in
  let chain () = Array.init 1000 (fun _ -> Splitmix.Stream.normal stream) in
  let same = [| chain (); chain (); chain (); chain () |] in
  let r = Diagnostics.split_rhat same in
  Alcotest.(check bool) (Printf.sprintf "converged rhat ~ 1 (got %.3f)" r) true
    (r < 1.05);
  let shifted =
    [| chain (); Array.map (fun x -> x +. 5.) (chain ()) |]
  in
  let r2 = Diagnostics.split_rhat shifted in
  Alcotest.(check bool) (Printf.sprintf "disagreeing chains rhat >> 1 (got %.3f)" r2)
    true (r2 > 1.5)

(* ---------- dual averaging + HMC ---------- *)

let test_dual_averaging_converges () =
  let m = gaussian 5 in
  let stream = Splitmix.Stream.create 11L in
  let q0 = Tensor.zeros [| 5 |] in
  let eps =
    Hmc.warmup_eps ~target_accept:0.8 ~n_warmup:400 ~model:m ~stream ~q0 ~eps0:1.
      ~n_leapfrog:8 ()
  in
  let r = Hmc.sample_chain { Hmc.eps; n_leapfrog = 8; minv = None } ~model:m ~stream ~q0 ~n_iter:400 in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance near target (eps %.3f, accept %.2f)" eps
       r.Hmc.accept_rate)
    true
    (Float.abs (r.Hmc.accept_rate -. 0.8) < 0.15)

let test_dual_averaging_monotone_response () =
  (* Feeding only rejections must shrink the step size; only acceptances
     must grow it. *)
  let da_low = Dual_averaging.create ~mu:(Stdlib.log 1.) () in
  for _ = 1 to 50 do
    Dual_averaging.update da_low ~accept_stat:0.
  done;
  Alcotest.(check bool) "rejections shrink eps" true
    (Dual_averaging.adapted_eps da_low < 0.5);
  let da_high = Dual_averaging.create ~mu:(Stdlib.log 1.) () in
  for _ = 1 to 50 do
    Dual_averaging.update da_high ~accept_stat:1.
  done;
  Alcotest.(check bool) "acceptances grow eps" true
    (Dual_averaging.adapted_eps da_high > 1.);
  Alcotest.(check int) "iteration count" 50 (Dual_averaging.iterations da_high)

let test_hmc_posterior_moments () =
  let m = gaussian 3 in
  let stream = Splitmix.Stream.create 12L in
  let r =
    Hmc.sample_chain { Hmc.eps = 0.45; n_leapfrog = 7; minv = None } ~model:m ~stream
      ~q0:(Tensor.zeros [| 3 |]) ~n_iter:8000
  in
  let kept = Array.sub r.Hmc.samples 1000 7000 in
  let mean_t, var_t = Diagnostics.chain_moments kept in
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "mean[%d] ~ 0 (got %.3f)" i (Tensor.data mean_t).(i))
      true
      (Float.abs (Tensor.data mean_t).(i) < 0.15);
    Alcotest.(check bool)
      (Printf.sprintf "var[%d] ~ 1 (got %.3f)" i (Tensor.data var_t).(i))
      true
      (Float.abs ((Tensor.data var_t).(i) -. 1.) < 0.25)
  done

(* ---------- NUTS reference sampler ---------- *)

let test_find_reasonable_eps () =
  let m = gaussian 5 in
  let eps = Nuts.find_reasonable_eps ~model:m ~q0:(Tensor.zeros [| 5 |]) () in
  Alcotest.(check bool) (Printf.sprintf "eps sane (got %.4f)" eps) true
    (eps > 1e-3 && eps < 10.)

let test_nuts_counters_monotone () =
  let m = gaussian 3 in
  let key = Counter_rng.key 77L in
  let cfg = Nuts.default_config ~eps:0.4 () in
  let r = Nuts.sample_chain cfg ~model:m ~key ~member:0 ~q0:(Tensor.zeros [| 3 |]) ~n_iter:10 in
  Alcotest.(check bool) "counter advanced" true (r.Nuts.final_counter >= 20);
  Alcotest.(check int) "samples recorded" 10 (Array.length r.Nuts.samples);
  Alcotest.(check bool) "gradients counted" true (r.Nuts.grad_evals > 0);
  Array.iter
    (fun d -> Alcotest.(check bool) "depth within limit" true (d <= cfg.Nuts.max_depth))
    r.Nuts.depths

let test_nuts_deterministic () =
  let m = gaussian 3 in
  let key = Counter_rng.key 78L in
  let cfg = Nuts.default_config ~eps:0.4 () in
  let q0 = Tensor.zeros [| 3 |] in
  let a = Nuts.sample_chain cfg ~model:m ~key ~member:1 ~q0 ~n_iter:5 in
  let b = Nuts.sample_chain cfg ~model:m ~key ~member:1 ~q0 ~n_iter:5 in
  Alcotest.(check bool) "same member same chain" true
    (Tensor.equal a.Nuts.final_q b.Nuts.final_q);
  let c = Nuts.sample_chain cfg ~model:m ~key ~member:2 ~q0 ~n_iter:5 in
  Alcotest.(check bool) "different member different chain" false
    (Tensor.equal a.Nuts.final_q c.Nuts.final_q)

let test_nuts_posterior_moments () =
  (* Pool many independent short chains — exactly the batch-of-chains
     methodology the paper advocates. *)
  let m = gaussian 3 in
  let key = Counter_rng.key 79L in
  let q0 = Tensor.zeros [| 3 |] in
  let eps = Nuts.find_reasonable_eps ~model:m ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let n_chains = 20 and n_iter = 200 and n_burn = 50 in
  let acc_mean = Tensor.zeros [| 3 |] and acc_var = Tensor.zeros [| 3 |] in
  let kept = ref 0 in
  for member = 0 to n_chains - 1 do
    let r = Nuts.sample_chain cfg ~model:m ~key ~member ~q0 ~n_iter in
    for i = n_burn to n_iter - 1 do
      incr kept;
      let s = r.Nuts.samples.(i) in
      for d = 0 to 2 do
        (Tensor.data acc_mean).(d) <- (Tensor.data acc_mean).(d) +. (Tensor.data s).(d);
        (Tensor.data acc_var).(d) <-
          (Tensor.data acc_var).(d) +. ((Tensor.data s).(d) *. (Tensor.data s).(d))
      done
    done
  done;
  let nf = float_of_int !kept in
  for d = 0 to 2 do
    let mean = (Tensor.data acc_mean).(d) /. nf in
    let var = ((Tensor.data acc_var).(d) /. nf) -. (mean *. mean) in
    Alcotest.(check bool) (Printf.sprintf "mean[%d] ~ 0 (got %.3f)" d mean) true
      (Float.abs mean < 0.12);
    Alcotest.(check bool) (Printf.sprintf "var[%d] ~ 1 (got %.3f)" d var) true
      (Float.abs (var -. 1.) < 0.25)
  done

let test_nuts_rhat_across_chains () =
  let m = gaussian 2 in
  let key = Counter_rng.key 80L in
  let q0 = Tensor.zeros [| 2 |] in
  let cfg = Nuts.default_config ~eps:0.5 () in
  let chains =
    Array.init 4 (fun member ->
        let r = Nuts.sample_chain cfg ~model:m ~key ~member ~q0 ~n_iter:200 in
        Diagnostics.column (Array.sub r.Nuts.samples 50 150) 0)
  in
  let r = Diagnostics.split_rhat chains in
  Alcotest.(check bool) (Printf.sprintf "NUTS chains mix (rhat %.3f)" r) true (r < 1.1)

let suites =
  [
    ( "leapfrog",
      [
        t "reversibility" `Quick test_leapfrog_reversibility;
        t "energy conservation" `Quick test_leapfrog_energy_conservation;
        t "input validation" `Quick test_leapfrog_bad_n;
      ] );
    ( "diagnostics",
      [
        t "mean and variance" `Quick test_mean_variance;
        t "effective sample size" `Quick test_ess;
        t "split R-hat" `Quick test_split_rhat;
      ] );
    ( "hmc",
      [
        t "dual averaging converges" `Quick test_dual_averaging_converges;
        t "dual averaging responds" `Quick test_dual_averaging_monotone_response;
        t "posterior moments" `Slow test_hmc_posterior_moments;
      ] );
    ( "nuts-reference",
      [
        t "find_reasonable_eps" `Quick test_find_reasonable_eps;
        t "counters and traces" `Quick test_nuts_counters_monotone;
        t "determinism by member" `Quick test_nuts_deterministic;
        t "posterior moments (many chains)" `Slow test_nuts_posterior_moments;
        t "chains mix (R-hat)" `Slow test_nuts_rhat_across_chains;
      ] );
  ]

(* ---------- iterative NUTS ---------- *)

let test_nuts_iter_matches_recursive_statistically () =
  (* The hand-unrolled sampler (paper §5's manual alternative to
     autobatching) must agree with the recursive one in distribution. *)
  let m = gaussian 3 in
  let q0 = Tensor.zeros [| 3 |] in
  let eps = Nuts.find_reasonable_eps ~model:m ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let stream = Splitmix.Stream.create 31L in
  let icfg = Nuts_iter.config_of_nuts cfg in
  let n_iter = 300 and n_burn = 60 and n_chains = 6 in
  let moments sampler =
    let acc = Array.make 3 0. and acc2 = Array.make 3 0. and kept = ref 0 in
    for chain = 0 to n_chains - 1 do
      let samples = sampler chain in
      for i = n_burn to n_iter - 1 do
        incr kept;
        let s = Tensor.data samples.(i) in
        for d = 0 to 2 do
          acc.(d) <- acc.(d) +. s.(d);
          acc2.(d) <- acc2.(d) +. (s.(d) *. s.(d))
        done
      done
    done;
    let nf = float_of_int !kept in
    Array.init 3 (fun d ->
        let mean = acc.(d) /. nf in
        (mean, (acc2.(d) /. nf) -. (mean *. mean)))
  in
  let iter_moments =
    moments (fun _ ->
        (Nuts_iter.sample_chain icfg ~model:m ~stream ~q0 ~n_iter).Nuts_iter.samples)
  in
  let key = Counter_rng.key 32L in
  let rec_moments =
    moments (fun chain ->
        (Nuts.sample_chain cfg ~model:m ~key ~member:chain ~q0 ~n_iter).Nuts.samples)
  in
  Array.iteri
    (fun d (mean_i, var_i) ->
      let mean_r, var_r = rec_moments.(d) in
      Alcotest.(check bool)
        (Printf.sprintf "means agree dim %d (%.3f vs %.3f)" d mean_i mean_r)
        true
        (Float.abs (mean_i -. mean_r) < 0.15);
      Alcotest.(check bool)
        (Printf.sprintf "vars agree dim %d (%.3f vs %.3f)" d var_i var_r)
        true
        (Float.abs (var_i -. var_r) < 0.3))
    iter_moments

let test_nuts_iter_moves_and_counts () =
  let m = gaussian 4 in
  let q0 = Tensor.zeros [| 4 |] in
  let stream = Splitmix.Stream.create 33L in
  let icfg = { Nuts_iter.eps = 0.4; max_depth = 8; leaf_steps = 4; delta_max = 1000. } in
  let r = Nuts_iter.sample_chain icfg ~model:m ~stream ~q0 ~n_iter:50 in
  Alcotest.(check bool) "chain moved" false (Tensor.equal r.Nuts_iter.final_q q0);
  Alcotest.(check bool) "gradients counted" true (r.Nuts_iter.grad_evals > 50)

let iter_suite =
  ( "nuts-iterative",
    [
      t "statistically matches recursive" `Slow
        test_nuts_iter_matches_recursive_statistically;
      t "moves and counts" `Quick test_nuts_iter_moves_and_counts;
    ] )

let suites = suites @ [ iter_suite ]

(* ---------- autocovariance sanity ---------- *)

let test_autocovariance_ar1 () =
  (* For AR(1) with coefficient phi, autocorrelation at lag k is phi^k. *)
  let stream = Splitmix.Stream.create 55L in
  let n = 60_000 and phi = 0.6 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (phi *. xs.(i - 1)) +. Splitmix.Stream.normal stream
  done;
  let c0 = Diagnostics.autocovariance xs 0 in
  List.iter
    (fun k ->
      let rho = Diagnostics.autocovariance xs k /. c0 in
      Alcotest.(check bool)
        (Printf.sprintf "rho(%d) ~ %.3f (got %.3f)" k (phi ** float_of_int k) rho)
        true
        (Float.abs (rho -. (phi ** float_of_int k)) < 0.05))
    [ 1; 2; 3 ];
  Alcotest.check_raises "bad lag"
    (Invalid_argument "Diagnostics.autocovariance: bad lag") (fun () ->
      ignore (Diagnostics.autocovariance xs n))

let autocov_suite =
  ("autocovariance", [ t "AR(1) decay" `Quick test_autocovariance_ar1 ])

let suites = suites @ [ autocov_suite ]
