(* Tests for the evaluation models. *)

let t = Alcotest.test_case

let test_gaussian_construction () =
  let g = Gaussian_model.ground_truth ~rho:0.5 ~dim:4 () in
  Alcotest.(check (float 1e-12)) "sigma diag" 1.
    (Tensor.get g.Gaussian_model.covariance [| 2; 2 |]);
  Alcotest.(check (float 1e-12)) "sigma band" 0.25
    (Tensor.get g.Gaussian_model.covariance [| 0; 2 |]);
  Alcotest.(check (float 1e-12)) "marginal variance" 1.
    (Gaussian_model.marginal_variance g 3);
  (* precision is exactly symmetric (bitwise: required for VM equality). *)
  let p = g.Gaussian_model.precision in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Alcotest.(check (float 0.)) "precision symmetric" (Tensor.get p [| i; j |])
        (Tensor.get p [| j; i |])
    done
  done;
  (* Σ · Σ⁻¹ = I *)
  Alcotest.(check bool) "precision inverts covariance" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-8
       (Tensor.matmul g.Gaussian_model.covariance p)
       (Tensor.eye 4))

let test_gaussian_logp_value () =
  (* For the identity limit rho=0, logp is the standard normal density. *)
  let m = Gaussian_model.model ~rho:0. ~dim:3 () in
  let q = Tensor.of_list [ 1.; -1.; 2. ] in
  let expected =
    (-0.5 *. (1. +. 1. +. 4.)) -. (1.5 *. Stdlib.log (2. *. Float.pi))
  in
  Alcotest.(check (float 1e-10)) "standard normal logp" expected
    (m.Model.logp q)

let test_gaussian_grad_finite_diff () =
  let m = Gaussian_model.model ~rho:0.7 ~dim:5 () in
  let q = Tensor.init [| 5 |] (fun i -> 0.3 *. float_of_int (i.(0) - 2)) in
  let fd = Ad.finite_diff (fun q -> m.Model.logp q) q in
  Alcotest.(check bool) "grad vs finite diff" true
    (Tensor.allclose ~rtol:1e-5 ~atol:1e-6 (m.Model.grad q) fd)

let test_gaussian_single_batch_agree () =
  Model.check_shapes (Gaussian_model.model ~dim:7 ())

let test_gaussian_sampling_moments () =
  let g = Gaussian_model.ground_truth ~rho:0.6 ~dim:3 () in
  let stream = Splitmix.Stream.create 21L in
  let n = 20_000 in
  let acc = Tensor.zeros [| 3 |] in
  let acc_cross = ref 0. in
  for _ = 1 to n do
    let s = Gaussian_model.sample g stream in
    for i = 0 to 2 do
      (Tensor.data acc).(i) <- (Tensor.data acc).(i) +. (Tensor.data s).(i)
    done;
    acc_cross := !acc_cross +. ((Tensor.data s).(0) *. (Tensor.data s).(1))
  done;
  let nf = float_of_int n in
  for i = 0 to 2 do
    Alcotest.(check bool) "sample mean ~ 0" true
      (Float.abs ((Tensor.data acc).(i) /. nf) < 0.03)
  done;
  Alcotest.(check bool) "sample cross-cov ~ rho" true
    (Float.abs ((!acc_cross /. nf) -. 0.6) < 0.03)

let test_gaussian_errors () =
  Alcotest.check_raises "dim 0"
    (Invalid_argument "Gaussian_model: dim must be positive") (fun () ->
      ignore (Gaussian_model.model ~dim:0 ()));
  Alcotest.check_raises "|rho| >= 1"
    (Invalid_argument "Gaussian_model: |rho| must be < 1") (fun () ->
      ignore (Gaussian_model.model ~rho:1. ~dim:2 ()))

let test_logistic_construction () =
  let l = Logistic_model.synth ~n:200 ~dim:5 () in
  Alcotest.(check int) "n_data" 200 (Logistic_model.n_data l);
  Alcotest.(check (array int)) "x shape" [| 200; 5 |] (Tensor.shape l.Logistic_model.x);
  Alcotest.(check (array int)) "y shape" [| 200 |] (Tensor.shape l.Logistic_model.y);
  Tensor.fold (fun () v ->
      Alcotest.(check bool) "labels are 0/1" true (v = 0. || v = 1.)) ()
    l.Logistic_model.y;
  (* Labels must not be degenerate. *)
  let ones = Tensor.item (Tensor.sum l.Logistic_model.y) in
  Alcotest.(check bool) "labels mixed" true (ones > 20. && ones < 180.)

let test_logistic_grad_finite_diff () =
  let m = Logistic_model.model ~n:80 ~dim:6 () in
  let beta = Tensor.init [| 6 |] (fun i -> 0.2 *. float_of_int (i.(0) - 3)) in
  let fd = Ad.finite_diff (fun b -> m.Model.logp b) beta in
  Alcotest.(check bool) "grad vs finite diff" true
    (Tensor.allclose ~rtol:1e-4 ~atol:1e-5 (m.Model.grad beta) fd)

let test_logistic_single_batch_agree () =
  Model.check_shapes (Logistic_model.model ~n:60 ~dim:4 ())

let test_logistic_logp_decreases_away_from_truth () =
  (* The log-posterior at the generating coefficients should beat a far
     away point. *)
  let l = Logistic_model.synth ~n:500 ~dim:8 () in
  let m = Logistic_model.model_of_data l in
  let far = Tensor.full [| 8 |] 10. in
  Alcotest.(check bool) "logp(beta_true) > logp(far)" true
    (m.Model.logp l.Logistic_model.beta_true > m.Model.logp far)

let test_logistic_deterministic_by_seed () =
  let a = Logistic_model.synth ~seed:5L ~n:30 ~dim:3 () in
  let b = Logistic_model.synth ~seed:5L ~n:30 ~dim:3 () in
  let c = Logistic_model.synth ~seed:6L ~n:30 ~dim:3 () in
  Alcotest.(check bool) "same seed same data" true
    (Tensor.equal a.Logistic_model.x b.Logistic_model.x);
  Alcotest.(check bool) "different seed different data" false
    (Tensor.equal a.Logistic_model.x c.Logistic_model.x)

let test_register_prims () =
  let gm = Gaussian_model.model ~dim:3 () in
  let reg = Prim.standard () in
  Model.register_prims reg gm;
  let logp = Prim.find_exn reg "logp" in
  Alcotest.(check (array int)) "logp shape" [||] (logp.Prim.shape [ [| 3 |] ]);
  (match logp.Prim.shape [ [| 4 |] ] with
  | _ -> Alcotest.fail "wrong dim accepted"
  | exception Prim.Shape_error _ -> ());
  let grad = Prim.find_exn reg "grad" in
  Alcotest.(check (array int)) "grad shape" [| 3 |] (grad.Prim.shape [ [| 3 |] ]);
  (* Values route to the model. *)
  let q = Tensor.of_list [ 0.5; -0.5; 1. ] in
  Alcotest.(check (float 0.)) "logp value routed"
    (gm.Model.logp q)
    (Tensor.item (logp.Prim.single ~member:0 [ q ]))

let test_of_single () =
  let m =
    Model.of_single ~name:"quad" ~dim:2
      ~logp:(fun q -> -.Tensor.item (Tensor.dot q q))
      ~grad:(fun q -> Tensor.mul_scalar q (-2.))
      ~logp_flops:4. ~grad_flops:2. ()
  in
  Model.check_shapes m;
  let qs = Tensor.create [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check bool) "batched logp from single" true
    (Tensor.allclose (m.Model.logp_batch qs) (Tensor.of_list [ -5.; -25. ]))

let suites =
  [
    ( "models",
      [
        t "gaussian construction" `Quick test_gaussian_construction;
        t "gaussian logp value" `Quick test_gaussian_logp_value;
        t "gaussian grad vs finite diff" `Quick test_gaussian_grad_finite_diff;
        t "gaussian single=batch" `Quick test_gaussian_single_batch_agree;
        t "gaussian sampling moments" `Quick test_gaussian_sampling_moments;
        t "gaussian input validation" `Quick test_gaussian_errors;
        t "logistic construction" `Quick test_logistic_construction;
        t "logistic grad vs finite diff" `Quick test_logistic_grad_finite_diff;
        t "logistic single=batch" `Quick test_logistic_single_batch_agree;
        t "logistic prefers generating beta" `Quick
          test_logistic_logp_decreases_away_from_truth;
        t "logistic seeding" `Quick test_logistic_deterministic_by_seed;
        t "prim registration" `Quick test_register_prims;
        t "of_single" `Quick test_of_single;
      ] );
  ]

(* ---------- Neal's funnel ---------- *)

let test_funnel_grad_and_shapes () =
  let m = Funnel_model.model ~dim:5 () in
  Model.check_shapes m;
  let q = Tensor.of_list [ 0.8; 0.3; -1.2; 0.5; 2.0 ] in
  let fd = Ad.finite_diff (fun q -> m.Model.logp q) q in
  Alcotest.(check bool) "funnel grad vs finite diff" true
    (Tensor.allclose ~rtol:1e-5 ~atol:1e-6 (m.Model.grad q) fd);
  (* And against an AD transcription of the density. *)
  let ad_g =
    Ad.grad1
      (fun tape v ->
        let dim = 5 in
        let k = float_of_int (dim - 1) in
        (* split: v0 = q[0], xs = q[1..] — via constant masks. *)
        let e0 = Ad.const tape (Tensor.of_list [ 1.; 0.; 0.; 0.; 0. ]) in
        let rest = Ad.const tape (Tensor.of_list [ 0.; 1.; 1.; 1.; 1. ]) in
        let v0 = Ad.dot e0 v in
        let x2 = Ad.dot (Ad.mul rest v) (Ad.mul rest v) in
        let t1 = Ad.mul_scalar (Ad.mul v0 v0) (-1. /. 18.) in
        let t2 = Ad.mul (Ad.mul_scalar x2 (-0.5)) (Ad.exp (Ad.mul_scalar v0 (-1.))) in
        let t3 = Ad.mul_scalar v0 (-0.5 *. k) in
        Ad.add (Ad.add t1 t2) t3)
      q
  in
  Alcotest.(check bool) "funnel grad vs AD" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-9 (m.Model.grad q) ad_g)

let test_funnel_exact_sampling () =
  let stream = Splitmix.Stream.create 41L in
  let n = 20_000 in
  let acc_v = ref 0. and acc_v2 = ref 0. in
  for _ = 1 to n do
    let s = Funnel_model.sample ~dim:3 stream in
    let v = (Tensor.data s).(0) in
    acc_v := !acc_v +. v;
    acc_v2 := !acc_v2 +. (v *. v)
  done;
  let nf = float_of_int n in
  let mean = !acc_v /. nf in
  let var = (!acc_v2 /. nf) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "v mean ~ 0 (got %.3f)" mean) true
    (Float.abs mean < 0.1);
  Alcotest.(check bool) (Printf.sprintf "v var ~ 9 (got %.3f)" var) true
    (Float.abs (var -. Funnel_model.v_variance) < 0.5)

let test_funnel_nuts_bitwise () =
  (* The funnel's data-dependent tree depths batch correctly too. *)
  let model = Funnel_model.model ~dim:4 () in
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| 4 |] in
  let cfg = Nuts.default_config ~eps:0.2 () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps:0.2 ~n_iter:5 ~n_burn:0 ~batch:4 () in
  let out = Autobatch.run_pc compiled ~batch in
  for member = 0 to 3 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter:5 in
    Alcotest.(check bool)
      (Printf.sprintf "funnel member %d bitwise" member)
      true
      (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd out) member))
  done

let test_funnel_dim_validation () =
  Alcotest.check_raises "dim 1"
    (Invalid_argument "Funnel_model: dim must be at least 2") (fun () ->
      ignore (Funnel_model.model ~dim:1 ()))

let funnel_suite =
  ( "funnel",
    [
      t "gradient vs FD and AD" `Quick test_funnel_grad_and_shapes;
      t "exact sampling moments" `Quick test_funnel_exact_sampling;
      t "NUTS bitwise equivalence" `Quick test_funnel_nuts_bitwise;
      t "input validation" `Quick test_funnel_dim_validation;
    ] )

let suites = suites @ [ funnel_suite ]

(* ---------- eight schools ---------- *)

let test_schools_grad () =
  let m = Eight_schools.model () in
  Model.check_shapes m;
  let q =
    Tensor.of_list [ 5.; 0.7; 0.3; -0.2; 0.9; -0.5; 0.1; 0.4; -0.8; 0.6 ]
  in
  let fd = Ad.finite_diff (fun q -> m.Model.logp q) q in
  Alcotest.(check bool) "schools grad vs finite diff" true
    (Tensor.allclose ~rtol:1e-5 ~atol:1e-6 (m.Model.grad q) fd)

let test_schools_inference () =
  let s =
    Batched_sampler.run ~model:(Eight_schools.model ()) ~chains:32 ~n_iter:150
      ~n_burn:50 ()
  in
  let mu = (Tensor.data s.Batched_sampler.mean).(0) in
  Alcotest.(check bool) (Printf.sprintf "mu in published range (got %.2f)" mu) true
    (mu > 4. && mu < 12.);
  (* Partial pooling: every school's standardized effect has |t| < 2 at
     the posterior mean (raw effects span -3..28). *)
  for j = 0 to 7 do
    let t = (Tensor.data s.Batched_sampler.mean).(2 + j) in
    Alcotest.(check bool) (Printf.sprintf "t_%d shrunk (got %.2f)" j t) true
      (Float.abs t < 2.)
  done

let test_schools_effects_ordering () =
  let q = Tensor.of_list [ 8.; Stdlib.log 6.; 1.; 0.; -0.5; 0.; 0.; 0.; 0.5; 0. ] in
  let e = Eight_schools.school_effects q in
  Alcotest.(check (array int)) "eight effects" [| 8 |] (Tensor.shape e);
  Alcotest.(check (float 1e-12)) "effect formula" (8. +. 6.) (Tensor.get e [| 0 |]);
  Alcotest.(check (float 1e-12)) "zero tilde = mu" 8. (Tensor.get e [| 1 |])

let test_schools_bitwise () =
  let model = Eight_schools.model () in
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| 10 |] in
  let cfg = Nuts.default_config ~eps:0.3 () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps:0.3 ~n_iter:4 ~n_burn:0 ~batch:3 () in
  let out = Autobatch.run_pc compiled ~batch in
  for member = 0 to 2 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter:4 in
    Alcotest.(check bool)
      (Printf.sprintf "schools member %d bitwise" member)
      true
      (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd out) member))
  done

let schools_suite =
  ( "eight-schools",
    [
      t "gradient vs finite diff" `Quick test_schools_grad;
      t "posterior in published range" `Slow test_schools_inference;
      t "school-effect mapping" `Quick test_schools_effects_ordering;
      t "NUTS bitwise equivalence" `Quick test_schools_bitwise;
    ] )

let suites = suites @ [ schools_suite ]
