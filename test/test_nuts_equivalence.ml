(* The repository's central correctness anchor (DESIGN.md A4/E4): the
   reference recursive NUTS sampler, the local static VM and the
   program-counter VM must produce *bitwise identical* chains — positions
   and RNG draw counters — for every batch member, on both evaluation
   models, under every runtime configuration. *)

let t = Alcotest.test_case

let setup model =
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| model.Model.dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  (reg, key, q0, eps, cfg, prog)

let check_equivalence ?(options = Lower_stack.default_options) ~model ~chains ~n_iter
    run_label runner =
  let reg, key, q0, eps, cfg, prog = setup model in
  let compiled =
    Autobatch.compile ~registry:reg ~options
      ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:chains () in
  let outputs = runner compiled batch in
  let q_out = List.nth outputs 0 and cnt_out = List.nth outputs 3 in
  for member = 0 to chains - 1 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
    let q_vm = Tensor.slice_row q_out member in
    Alcotest.(check bool)
      (Printf.sprintf "%s: member %d position bitwise equal" run_label member)
      true
      (Tensor.equal r.Nuts.final_q q_vm);
    Alcotest.(check (float 0.))
      (Printf.sprintf "%s: member %d counter equal" run_label member)
      (float_of_int r.Nuts.final_counter)
      (Tensor.data cnt_out).(member)
  done

let gaussian = Gaussian_model.model ~rho:0.7 ~dim:8 ()
let logistic = Logistic_model.model ~n:100 ~dim:6 ()

let test_pc_gaussian () =
  check_equivalence ~model:gaussian ~chains:6 ~n_iter:8 "pc/gaussian"
    (fun compiled batch -> Autobatch.run_pc compiled ~batch)

let test_local_gaussian () =
  check_equivalence ~model:gaussian ~chains:6 ~n_iter:8 "local/gaussian"
    (fun compiled batch -> Autobatch.run_local compiled ~batch)

let test_pc_logistic () =
  check_equivalence ~model:logistic ~chains:4 ~n_iter:5 "pc/logistic"
    (fun compiled batch -> Autobatch.run_pc compiled ~batch)

let test_local_logistic () =
  check_equivalence ~model:logistic ~chains:4 ~n_iter:5 "local/logistic"
    (fun compiled batch -> Autobatch.run_local compiled ~batch)

let test_local_gather_style () =
  check_equivalence ~model:gaussian ~chains:5 ~n_iter:5 "local-gather/gaussian"
    (fun compiled batch ->
      Autobatch.run_local
        ~config:{ Local_vm.default_config with style = Local_vm.Gather_scatter }
        compiled ~batch)

let test_pc_schedulers () =
  List.iter
    (fun sched ->
      check_equivalence ~model:gaussian ~chains:4 ~n_iter:4
        ("pc-" ^ Sched_policy.to_string sched)
        (fun compiled batch ->
          Autobatch.run_pc ~config:{ Pc_vm.default_config with sched } compiled ~batch))
    Sched_policy.all

let test_pc_without_optimizations () =
  check_equivalence
    ~options:{ Lower_stack.detect_temporaries = false; save_live_only = false }
    ~model:gaussian ~chains:4 ~n_iter:4 "pc-noopt"
    (fun compiled batch -> Autobatch.run_pc compiled ~batch)

let test_pc_naive_stack_modes () =
  check_equivalence ~model:gaussian ~chains:4 ~n_iter:4 "pc-naive-writes"
    (fun compiled batch ->
      Autobatch.run_pc
        ~config:
          { Pc_vm.default_config with naive_stack_writes = true; top_cache = false }
        compiled ~batch)

let test_unbatched_eager_baseline () =
  check_equivalence ~model:gaussian ~chains:3 ~n_iter:4 "unbatched"
    (fun compiled batch -> Autobatch.run_unbatched compiled ~batch)

let test_moment_accumulators_consistent () =
  (* sum_q / sum_qsq from the program equal recomputing them from the
     reference sampler's per-iteration positions. *)
  let model = gaussian in
  let reg, key, q0, eps, cfg, prog = setup model in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let n_iter = 7 and n_burn = 3 in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn ~batch:3 () in
  let outputs = Autobatch.run_pc compiled ~batch in
  for member = 0 to 2 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
    let expect_sum = ref (Tensor.zeros [| model.Model.dim |]) in
    for i = n_burn to n_iter - 1 do
      expect_sum := Tensor.add !expect_sum r.Nuts.samples.(i)
    done;
    let got = Tensor.slice_row (List.nth outputs 1) member in
    Alcotest.(check bool)
      (Printf.sprintf "member %d sum_q matches reference" member)
      true
      (Tensor.allclose ~rtol:1e-12 ~atol:1e-12 got !expect_sum)
  done

let suites =
  [
    ( "nuts-equivalence",
      [
        t "pc VM = reference (gaussian)" `Quick test_pc_gaussian;
        t "local VM = reference (gaussian)" `Quick test_local_gaussian;
        t "pc VM = reference (logistic)" `Quick test_pc_logistic;
        t "local VM = reference (logistic)" `Quick test_local_logistic;
        t "gather/scatter style" `Quick test_local_gather_style;
        t "all pc schedulers" `Quick test_pc_schedulers;
        t "optimizations disabled" `Quick test_pc_without_optimizations;
        t "naive stack writes" `Quick test_pc_naive_stack_modes;
        t "unbatched eager baseline" `Quick test_unbatched_eager_baseline;
        t "moment accumulators" `Quick test_moment_accumulators_consistent;
      ] );
  ]

(* ---------- multinomial variant ---------- *)

let setup_variant variant model =
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| model.Model.dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~variant ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  (reg, key, q0, eps, cfg, prog)

let check_variant_equivalence variant ~model ~chains ~n_iter label runner =
  let reg, key, q0, eps, cfg, prog = setup_variant variant model in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:chains () in
  let outputs = runner compiled batch in
  for member = 0 to chains - 1 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
    Alcotest.(check bool)
      (Printf.sprintf "%s: member %d bitwise equal" label member)
      true
      (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.nth outputs 0) member));
    Alcotest.(check (float 0.))
      (Printf.sprintf "%s: member %d counter" label member)
      (float_of_int r.Nuts.final_counter)
      (Tensor.data (List.nth outputs 3)).(member)
  done

let test_multinomial_pc () =
  check_variant_equivalence Nuts.Multinomial ~model:gaussian ~chains:5 ~n_iter:6
    "multinomial/pc" (fun compiled batch -> Autobatch.run_pc compiled ~batch)

let test_multinomial_local () =
  check_variant_equivalence Nuts.Multinomial ~model:gaussian ~chains:5 ~n_iter:6
    "multinomial/local" (fun compiled batch -> Autobatch.run_local compiled ~batch)

let test_multinomial_logistic () =
  check_variant_equivalence Nuts.Multinomial ~model:logistic ~chains:3 ~n_iter:4
    "multinomial/logistic" (fun compiled batch -> Autobatch.run_pc compiled ~batch)

let test_multinomial_differs_from_slice () =
  (* The two variants are different samplers: same seed, different chains. *)
  let model = gaussian in
  let _, key, q0, eps, _, _ = setup_variant Nuts.Slice model in
  let slice_cfg = Nuts.default_config ~eps () in
  let multi_cfg = Nuts.default_config ~variant:Nuts.Multinomial ~eps () in
  let a = Nuts.sample_chain slice_cfg ~model ~key ~member:0 ~q0 ~n_iter:5 in
  let b = Nuts.sample_chain multi_cfg ~model ~key ~member:0 ~q0 ~n_iter:5 in
  Alcotest.(check bool) "variants differ" false (Tensor.equal a.Nuts.final_q b.Nuts.final_q)

let test_multinomial_posterior_moments () =
  (* The multinomial sampler targets the same posterior. *)
  let model = Gaussian_model.model ~rho:0.5 ~dim:3 () in
  let key = Counter_rng.key 91L in
  let q0 = Tensor.zeros [| 3 |] in
  (* Half the Algorithm-4 step: at the stability-limit step size both
     variants' variance estimates converge very slowly (heavy
     autocorrelation), which is not what this test is about. *)
  let eps = 0.5 *. Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~variant:Nuts.Multinomial ~eps () in
  let acc = Array.make 3 0. and acc2 = Array.make 3 0. and kept = ref 0 in
  for member = 0 to 11 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter:200 in
    for i = 50 to 199 do
      incr kept;
      let s = Tensor.data r.Nuts.samples.(i) in
      for d = 0 to 2 do
        acc.(d) <- acc.(d) +. s.(d);
        acc2.(d) <- acc2.(d) +. (s.(d) *. s.(d))
      done
    done
  done;
  let nf = float_of_int !kept in
  for d = 0 to 2 do
    let mean = acc.(d) /. nf in
    let var = (acc2.(d) /. nf) -. (mean *. mean) in
    Alcotest.(check bool) (Printf.sprintf "mean[%d] ~ 0 (got %.3f)" d mean) true
      (Float.abs mean < 0.12);
    Alcotest.(check bool) (Printf.sprintf "var[%d] ~ 1 (got %.3f)" d var) true
      (Float.abs (var -. 1.) < 0.25)
  done

let multinomial_suite =
  ( "nuts-multinomial",
    [
      t "pc VM = reference" `Quick test_multinomial_pc;
      t "local VM = reference" `Quick test_multinomial_local;
      t "logistic regression" `Quick test_multinomial_logistic;
      t "differs from slice variant" `Quick test_multinomial_differs_from_slice;
      t "posterior moments" `Slow test_multinomial_posterior_moments;
    ] )

let suites = suites @ [ multinomial_suite ]

(* ---------- mass matrix ---------- *)

let aniso_model =
  Gaussian_model.model ~rho:0.3 ~scales:[| 0.2; 1.; 5.; 0.5; 2. |] ~dim:5 ()

let test_mass_matrix_equivalence () =
  (* Bitwise reference/VM equivalence with a non-trivial inverse mass. *)
  let model = aniso_model in
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| 5 |] in
  let minv = Tensor.of_list [ 0.04; 1.; 25.; 0.25; 4. ] in
  let eps = 0.3 in
  let cfg = Nuts.default_config ~mass_minv:minv ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let chains = 4 and n_iter = 6 in
  let batch = Nuts_dsl.inputs ~minv ~q0 ~eps ~n_iter ~n_burn:0 ~batch:chains () in
  List.iter
    (fun (label, outputs) ->
      for member = 0 to chains - 1 do
        let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
        Alcotest.(check bool)
          (Printf.sprintf "%s: member %d bitwise equal (mass)" label member)
          true
          (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.nth outputs 0) member))
      done)
    [
      ("pc", Autobatch.run_pc compiled ~batch);
      ("local", Autobatch.run_local compiled ~batch);
    ]

let test_identity_mass_is_bitwise_identity () =
  (* Explicit ones = the no-mass configuration, exactly. *)
  let model = gaussian in
  let _, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| model.Model.dim |] in
  let eps = 0.3 in
  let plain = Nuts.default_config ~eps () in
  let ones = Nuts.default_config ~mass_minv:(Tensor.ones [| model.Model.dim |]) ~eps () in
  let a = Nuts.sample_chain plain ~model ~key ~member:0 ~q0 ~n_iter:6 in
  let b = Nuts.sample_chain ones ~model ~key ~member:0 ~q0 ~n_iter:6 in
  Alcotest.(check bool) "bitwise identical" true (Tensor.equal a.Nuts.final_q b.Nuts.final_q)

let test_warmup_recovers_scales () =
  (* On the anisotropic Gaussian the adapted inverse mass should track the
     marginal variances (0.04, 1, 25, 0.25, 4). *)
  let model = aniso_model in
  let q0 = Tensor.zeros [| 5 |] in
  let w = Warmup.run ~n_window:400 ~model ~q0 () in
  Alcotest.(check bool) "eps sane" true (w.Warmup.eps > 1e-4 && w.Warmup.eps < 10.);
  let truth = [| 0.04; 1.; 25.; 0.25; 4. |] in
  Array.iteri
    (fun i target ->
      let got = (Tensor.data w.Warmup.minv).(i) in
      Alcotest.(check bool)
        (Printf.sprintf "minv[%d] ~ %.2f (got %.3f)" i target got)
        true
        (got > target /. 4. && got < target *. 4.))
    truth

let test_mass_matrix_improves_conditioning () =
  (* With the adapted metric, NUTS needs shallower trees on the
     anisotropic target than with the identity. *)
  let model = aniso_model in
  let q0 = Tensor.zeros [| 5 |] in
  let key = Counter_rng.key 123L in
  let w = Warmup.run ~model ~q0 () in
  let with_mass =
    Nuts.sample_chain
      (Nuts.default_config ~mass_minv:w.Warmup.minv ~eps:w.Warmup.eps ())
      ~model ~key ~member:0 ~q0:w.Warmup.q ~n_iter:60
  in
  let eps_id =
    Hmc.warmup_eps ~model ~stream:(Splitmix.Stream.create 5L) ~q0
      ~eps0:(Nuts.find_reasonable_eps ~model ~q0 ()) ~n_leapfrog:4 ()
  in
  let identity =
    Nuts.sample_chain (Nuts.default_config ~eps:eps_id ()) ~model ~key ~member:0
      ~q0:w.Warmup.q ~n_iter:60
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer gradients with adapted mass (%d vs %d)"
       with_mass.Nuts.grad_evals identity.Nuts.grad_evals)
    true
    (with_mass.Nuts.grad_evals < identity.Nuts.grad_evals)

let mass_suite =
  ( "nuts-mass-matrix",
    [
      t "bitwise equivalence with mass" `Quick test_mass_matrix_equivalence;
      t "identity mass is exact" `Quick test_identity_mass_is_bitwise_identity;
      t "warmup recovers scales" `Slow test_warmup_recovers_scales;
      t "adapted mass reduces gradients" `Slow test_mass_matrix_improves_conditioning;
    ] )

let suites = suites @ [ mass_suite ]

(* ---------- HMC in the DSL ---------- *)

let test_hmc_dsl_no_stacks () =
  (* A program with calls and loops but no recursion: the compiler must
     give it zero stacked variables (paper §3's key consequence). *)
  let model = gaussian in
  let reg, _ = Nuts_dsl.setup ~model () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Hmc_dsl.input_shapes ~model)
      (Hmc_dsl.program ())
  in
  let _, _, stacked = Stack_ir.stats compiled.Autobatch.stack in
  Alcotest.(check int) "no stacked variables" 0 stacked

let test_hmc_dsl_bitwise () =
  let model = gaussian in
  let reg, key = Nuts_dsl.setup ~model () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Hmc_dsl.input_shapes ~model)
      (Hmc_dsl.program ())
  in
  let q0 = Tensor.zeros [| model.Model.dim |] in
  let eps = 0.25 and n_iter = 12 and n_burn = 4 and chains = 5 in
  let batch = Hmc_dsl.inputs ~q0 ~eps ~n_iter ~n_burn ~batch:chains () in
  List.iter
    (fun (label, outputs) ->
      for member = 0 to chains - 1 do
        let r =
          Hmc_dsl.reference_chain ~model ~key ~member ~q0 ~eps ~n_iter ~n_burn ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: hmc member %d q bitwise" label member)
          true
          (Tensor.equal r.Hmc_dsl.final_q (Tensor.slice_row (List.nth outputs 0) member));
        Alcotest.(check bool)
          (Printf.sprintf "%s: hmc member %d sum_q bitwise" label member)
          true
          (Tensor.equal r.Hmc_dsl.sum_q (Tensor.slice_row (List.nth outputs 1) member));
        Alcotest.(check (float 0.))
          (Printf.sprintf "%s: hmc member %d accepts" label member)
          r.Hmc_dsl.accepts
          (Tensor.data (List.nth outputs 4)).(member);
        Alcotest.(check (float 0.))
          (Printf.sprintf "%s: hmc member %d counter" label member)
          (float_of_int r.Hmc_dsl.final_counter)
          (Tensor.data (List.nth outputs 3)).(member)
      done)
    [
      ("pc", Autobatch.run_pc compiled ~batch);
      ("local", Autobatch.run_local compiled ~batch);
      ("jit", Pc_jit.run (Autobatch.jit compiled ~batch:chains) ~batch);
    ]

let test_hmc_dsl_posterior () =
  let model = Gaussian_model.model ~rho:0.4 ~dim:3 () in
  let reg, _ = Nuts_dsl.setup ~model () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Hmc_dsl.input_shapes ~model)
      (Hmc_dsl.program ())
  in
  let q0 = Tensor.zeros [| 3 |] in
  let chains = 24 and n_iter = 500 and n_burn = 100 in
  let batch = Hmc_dsl.inputs ~q0 ~eps:0.3 ~n_iter ~n_burn ~batch:chains () in
  let outputs = Autobatch.run_pc compiled ~batch in
  let kept = float_of_int ((n_iter - n_burn) * chains) in
  let mean = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 1)) (1. /. kept) in
  let ex2 = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 2)) (1. /. kept) in
  let var = Tensor.sub ex2 (Tensor.square mean) in
  for d = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "hmc mean[%d] ~ 0 (got %.3f)" d (Tensor.data mean).(d))
      true
      (Float.abs (Tensor.data mean).(d) < 0.15);
    Alcotest.(check bool)
      (Printf.sprintf "hmc var[%d] ~ 1 (got %.3f)" d (Tensor.data var).(d))
      true
      (Float.abs ((Tensor.data var).(d) -. 1.) < 0.3)
  done;
  (* Acceptance should be healthy at this step size. *)
  let total_accepts = Tensor.item (Tensor.sum (List.nth outputs 4)) in
  let rate = total_accepts /. float_of_int (n_iter * chains) in
  Alcotest.(check bool) (Printf.sprintf "acceptance sane (%.2f)" rate) true
    (rate > 0.5 && rate < 1.0)

let hmc_dsl_suite =
  ( "hmc-dsl",
    [
      t "non-recursive => no stacks" `Quick test_hmc_dsl_no_stacks;
      t "bitwise vs reference (pc/local/jit)" `Quick test_hmc_dsl_bitwise;
      t "posterior moments" `Slow test_hmc_dsl_posterior;
    ] )

let suites = suites @ [ hmc_dsl_suite ]
