(* Tests for the observability layer: the JSON codec both directions, the
   metrics registry's quantile arithmetic, trace recording and its Chrome
   export (golden file + structural checks on a live run), and the
   acceptance criterion that attaching a sink never perturbs a run —
   outputs and the simulated clock stay bitwise identical. *)

let t = Alcotest.test_case

(* ---------- fixtures ---------- *)

let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let fib_compiled =
  lazy (Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program)

let fib_batch z =
  [ Tensor.init [| z |] (fun i -> float_of_int (3 + (i.(0) mod 5))) ]

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let v =
    Obs_json.Obj
      [
        ("name", Obs_json.Str "tr\"ace\n");
        ("n", Obs_json.Int 42);
        ("x", Obs_json.Float 1.5);
        ("whole", Obs_json.Float 3.);
        ("flag", Obs_json.Bool true);
        ("nothing", Obs_json.Null);
        ("xs", Obs_json.List [ Obs_json.Int 1; Obs_json.Int (-2) ]);
      ]
  in
  match Obs_json.of_string (Obs_json.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' ->
    Alcotest.(check bool) "round trips" true (v = v');
    (* Pretty rendering parses back to the same value too. *)
    (match Obs_json.of_string (Obs_json.to_string_pretty v) with
    | Ok v'' -> Alcotest.(check bool) "pretty round trips" true (v = v'')
    | Error e -> Alcotest.failf "pretty reparse failed: %s" e)

let test_json_numbers () =
  (* Integral floats keep a mark distinguishing them from ints. *)
  Alcotest.(check string) "float 3 renders 3.0" "3.0"
    (Obs_json.to_string (Obs_json.Float 3.));
  Alcotest.(check string) "int 3 renders 3" "3"
    (Obs_json.to_string (Obs_json.Int 3));
  Alcotest.(check string) "nan renders null" "null"
    (Obs_json.to_string (Obs_json.Float Float.nan));
  (match Obs_json.of_string "3.0" with
  | Ok (Obs_json.Float 3.) -> ()
  | _ -> Alcotest.fail "3.0 should parse as Float 3.");
  match Obs_json.of_string "[1,2.5,\"a\\u0041\"]" with
  | Ok (Obs_json.List [ Obs_json.Int 1; Obs_json.Float 2.5; Obs_json.Str "aA" ]) -> ()
  | _ -> Alcotest.fail "mixed list parse"

(* ---------- metrics ---------- *)

let test_counters_and_gauges () =
  let m = Obs_metrics.create () in
  let c = Obs_metrics.counter m "launches" in
  Obs_metrics.incr c;
  Obs_metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs_metrics.count c);
  Alcotest.(check int) "same name, same instrument" 5
    (Obs_metrics.count (Obs_metrics.counter m "launches"));
  let g = Obs_metrics.gauge m "occupancy" in
  Obs_metrics.set g 0.5;
  Obs_metrics.set g 0.75;
  Alcotest.(check (float 0.)) "gauge last write wins" 0.75 (Obs_metrics.value g)

let test_disabled_registry_is_dead () =
  let m = Obs_metrics.create ~enabled:false () in
  Alcotest.(check bool) "disabled" false (Obs_metrics.enabled m);
  let c = Obs_metrics.counter m "c" and h = Obs_metrics.histogram m "h" in
  Obs_metrics.incr ~by:100 c;
  Obs_metrics.observe h 1.0;
  Alcotest.(check int) "counter dead" 0 (Obs_metrics.count c);
  Alcotest.(check int) "histogram dead" 0 (Obs_metrics.hist_count h)

let test_histogram_quantiles () =
  let m = Obs_metrics.create () in
  let h = Obs_metrics.histogram m "latency" in
  (* 1..1000 "milliseconds": exact aggregates, bucketed quantiles. *)
  for i = 1 to 1000 do
    Obs_metrics.observe h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 1000 (Obs_metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 500.5 (Obs_metrics.hist_sum h);
  Alcotest.(check (float 0.)) "min exact" 0.001 (Obs_metrics.hist_min h);
  Alcotest.(check (float 0.)) "max exact" 1.0 (Obs_metrics.hist_max h);
  (* Log buckets at 8 per octave: relative error is bounded by the bucket
     width, ~9%. Check each advertised quantile against the true one. *)
  List.iter
    (fun (q, truth) ->
      let est = Obs_metrics.quantile h q in
      let rel = Float.abs (est -. truth) /. truth in
      if rel > 0.1 then
        Alcotest.failf "q%.2f: estimate %g vs true %g (rel %.3f)" q est truth rel)
    [ (0.5, 0.5); (0.9, 0.9); (0.99, 0.99) ];
  (* Estimates are clamped to the observed range. *)
  Alcotest.(check bool) "q0 >= min" true (Obs_metrics.quantile h 0. >= 0.001);
  Alcotest.(check bool) "q1 <= max" true (Obs_metrics.quantile h 1. <= 1.0);
  match Obs_metrics.hist_to_json h with
  | Obs_json.Obj fields ->
    List.iter
      (fun k ->
        if not (List.mem_assoc k fields) then Alcotest.failf "missing %s" k)
      [ "count"; "sum"; "mean"; "min"; "max"; "p50"; "p90"; "p99" ]
  | _ -> Alcotest.fail "hist_to_json should be an object"

let test_histogram_zero_and_empty () =
  let m = Obs_metrics.create () in
  let h = Obs_metrics.histogram m "h" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs_metrics.quantile h 0.5));
  Obs_metrics.observe h 0.;
  Obs_metrics.observe h (-1.);
  Alcotest.(check int) "non-positive observations counted" 2
    (Obs_metrics.hist_count h);
  Alcotest.(check (float 0.)) "quantile clamps to max" 0.
    (Obs_metrics.quantile h 0.99)

(* ---------- trace: golden Chrome export ---------- *)

(* A hand-built trace covering every event family; its Chrome export is
   compared byte-for-byte with test/trace_golden.json. Regenerate every
   golden at once with AUTOBATCH_BLESS=/abs/path/to/test (the directory
   to write into) after a deliberate format change. *)
let golden_trace () =
  let tr = Obs_trace.create () in
  let vm = Obs_trace.track tr "vm" in
  let srv = Obs_trace.track tr "server" in
  Obs_trace.record tr ~track:vm ~ts:0.
    (Obs_sink.Step { shard = 0; step = 1; block = 0 });
  Obs_trace.record tr ~track:vm ~ts:2e-4
    (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = "block 0"; t0 = 0.; t1 = 2e-4 });
  Obs_trace.record tr ~track:vm ~ts:1e-3
    (Obs_sink.Step { shard = 1; step = 2; block = 3 });
  Obs_trace.record tr ~track:vm ~ts:1.5e-3
    (Obs_sink.Collective
       { name = "all_reduce"; bytes = 1024.; t0 = 1.2e-3; t1 = 1.5e-3 });
  Obs_trace.record tr ~track:srv ~ts:0. (Obs_sink.Request_enqueued { id = 0; at = 0. });
  Obs_trace.record tr ~track:srv ~ts:5e-4 (Obs_sink.Request_shed { id = 7; at = 5e-4 });
  Obs_trace.record tr ~track:srv ~ts:6e-4
    (Obs_sink.Request_rejected { id = 8; at = 6e-4 });
  Obs_trace.record tr ~track:srv ~ts:3e-3
    (Obs_sink.Request_completed
       { id = 0; queued = 0.; started = 1e-3; finished = 3e-3 });
  Obs_trace.record tr ~track:vm ~ts:2e-3 (Obs_sink.Checkpoint { step = 2; bytes = 128 });
  Obs_trace.record tr ~track:vm ~ts:2.5e-3 (Obs_sink.Restore { step = 2 });
  tr

let read_file path =
  In_channel.with_open_text path In_channel.input_all

let test_trace_golden () =
  let got = Obs_trace.to_chrome_string (golden_trace ()) in
  match Sys.getenv_opt "AUTOBATCH_BLESS" with
  | Some dir when dir <> "" ->
    let path = Filename.concat dir "trace_golden.json" in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc got)
  | _ ->
    let want = read_file "trace_golden.json" in
    Alcotest.(check string) "chrome export matches golden" want got;
    (* The golden document is itself valid JSON with the Chrome shape. *)
    (match Obs_json.of_string got with
    | Ok doc ->
      Alcotest.(check bool) "has traceEvents" true
        (Obs_json.member "traceEvents" doc <> None)
    | Error e -> Alcotest.failf "golden is not JSON: %s" e)

let test_trace_limit_and_csv () =
  let tr = Obs_trace.create ~limit:2 () in
  let track = Obs_trace.track tr "t" in
  for i = 1 to 5 do
    Obs_trace.record tr ~track ~ts:(float_of_int i)
      (Obs_sink.Step { shard = 0; step = i; block = 0 })
  done;
  Alcotest.(check int) "kept" 2 (List.length (Obs_trace.entries tr));
  Alcotest.(check int) "dropped" 3 (Obs_trace.dropped tr);
  let csv = Obs_trace.to_csv tr in
  Alcotest.(check bool) "csv has rows" true (String.length csv > 0)

(* ---------- trace: a live run exports a well-formed document ---------- *)

let test_live_trace_well_formed () =
  let compiled = Lazy.force fib_compiled in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let tr = Obs_trace.create () in
  let track = Obs_trace.track tr "fib" in
  let sink = Obs_trace.sink tr ~track ~clock:(fun () -> Engine.elapsed engine) in
  Engine.set_sink engine sink;
  let config =
    { Pc_vm.default_config with engine = Some engine; sink = Some sink }
  in
  ignore (Autobatch.run_pc ~config compiled ~batch:(fib_batch 8));
  let doc =
    match Obs_json.of_string (Obs_trace.to_chrome_string tr) with
    | Ok d -> d
    | Error e -> Alcotest.failf "export is not JSON: %s" e
  in
  let events =
    match Obs_json.member "traceEvents" doc with
    | Some (Obs_json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let str k ev =
    match Obs_json.member k ev with Some (Obs_json.Str s) -> Some s | _ -> None
  in
  let phases =
    List.filter_map (fun ev -> str "ph" ev) events
  in
  (* Superstep B/E pairs balance; launches appear as X completes. *)
  let count p = List.length (List.filter (String.equal p) phases) in
  Alcotest.(check bool) "has superstep spans" true (count "B" > 0);
  Alcotest.(check int) "B/E balanced" (count "B") (count "E");
  Alcotest.(check bool) "has launch spans" true (count "X" > 0);
  (* Timestamps are numeric and non-negative; B events arrive in
     non-decreasing time order (the engine clock is monotone). *)
  let b_ts =
    List.filter_map
      (fun ev ->
        match (str "ph" ev, Obs_json.member "ts" ev) with
        | Some "B", Some (Obs_json.Float ts) -> Some ts
        | Some "B", Some (Obs_json.Int ts) -> Some (float_of_int ts)
        | _ -> None)
      events
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "superstep timestamps monotone" true (monotone b_ts);
  Alcotest.(check bool) "nothing dropped" true (Obs_trace.dropped tr = 0)

(* ---------- the sink must not perturb execution ---------- *)

(* Run a workload with no sink and with a recording sink; outputs and the
   engine clock must be bitwise identical. The sink is the only difference
   between the two runs. *)
let check_unperturbed name run =
  let outs_off, clock_off = run None in
  let tr = Obs_trace.create () in
  let track = Obs_trace.track tr name in
  let sink = Obs_trace.sink tr ~track ~clock:(fun () -> 0.) in
  let outs_on, clock_on = run (Some sink) in
  Alcotest.(check bool)
    (name ^ ": recorded something")
    true
    (List.length (Obs_trace.entries tr) > 0);
  Alcotest.(check bool)
    (name ^ ": clock identical")
    true
    (Int64.equal (Int64.bits_of_float clock_off) (Int64.bits_of_float clock_on));
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output %d bitwise" name i)
        true (Tensor.equal a b))
    (List.combine outs_off outs_on)

let test_sink_off_on_pc () =
  let compiled = Lazy.force fib_compiled in
  check_unperturbed "pc" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config = { Pc_vm.default_config with engine = Some engine; sink } in
      let outs = Autobatch.run_pc ~config compiled ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_sink_off_on_jit () =
  let compiled = Lazy.force fib_compiled in
  let exe = Autobatch.jit compiled ~batch:8 in
  check_unperturbed "jit" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let outs = Pc_jit.run ~engine ?sink exe ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_sink_off_on_local () =
  let compiled = Lazy.force fib_compiled in
  check_unperturbed "local" (fun sink ->
      let engine = Engine.create ~device:Device.cpu ~mode:Engine.Eager () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config = { Local_vm.default_config with engine = Some engine; sink } in
      let outs = Autobatch.run_local ~config compiled ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_sink_off_on_shard () =
  let compiled = Lazy.force fib_compiled in
  check_unperturbed "shard" (fun sink ->
      let config =
        { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 (); sink }
      in
      let r = Autobatch.run_sharded ~config compiled ~batch:(fib_batch 8) in
      (r.Shard_vm.outputs, r.Shard_vm.sim_time))

let test_sink_off_on_server () =
  let compiled = Lazy.force fib_compiled in
  let requests () =
    List.init 4 (fun id ->
        Request.make ~id ~member:(id * 16) ~arrival:0.
          ~cost_hint:(float_of_int (4 + id))
          ~program:compiled
          ~inputs:[ Tensor.of_list [ float_of_int (4 + id) ] ]
          ())
  in
  check_unperturbed "server" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config =
        {
          Server.default_config with
          lanes = 2;
          vm = { Pc_vm.default_config with engine = Some engine; sink };
        }
      in
      let stats = Server.run ~config ~program:compiled (requests ()) in
      let outs =
        List.concat_map
          (fun (r : Server.record) -> r.Server.outputs)
          stats.Server.completions
      in
      (outs, stats.Server.makespan))

(* ---------- report documents ---------- *)

let test_report_document () =
  let doc =
    Obs_report.document ~name:"unit"
      [ ("answer", Obs_json.Int 42); ("pi", Obs_json.Float 3.5) ]
  in
  (match Obs_json.member "report" doc with
  | Some (Obs_json.Str "unit") -> ()
  | _ -> Alcotest.fail "report name");
  (match Obs_json.member "schema_version" doc with
  | Some (Obs_json.Int v) -> Alcotest.(check bool) "version positive" true (v >= 1)
  | _ -> Alcotest.fail "schema_version");
  match Obs_json.of_string (Obs_json.to_string doc) with
  | Ok d -> Alcotest.(check bool) "document reparses" true (d = doc)
  | Error e -> Alcotest.failf "document not JSON: %s" e

let suites =
  [
    ( "obs",
      [
        t "json round trip" `Quick test_json_roundtrip;
        t "json numbers" `Quick test_json_numbers;
        t "counters and gauges" `Quick test_counters_and_gauges;
        t "disabled registry" `Quick test_disabled_registry_is_dead;
        t "histogram quantiles" `Quick test_histogram_quantiles;
        t "histogram edge cases" `Quick test_histogram_zero_and_empty;
        t "golden chrome export" `Quick test_trace_golden;
        t "trace limit and csv" `Quick test_trace_limit_and_csv;
        t "live trace well-formed" `Quick test_live_trace_well_formed;
        t "sink off/on pc" `Quick test_sink_off_on_pc;
        t "sink off/on jit" `Quick test_sink_off_on_jit;
        t "sink off/on local" `Quick test_sink_off_on_local;
        t "sink off/on shard" `Quick test_sink_off_on_shard;
        t "sink off/on server" `Quick test_sink_off_on_server;
        t "report document" `Quick test_report_document;
      ] );
  ]
