(* Tests for the CFG optimizer: semantics preservation (bitwise), and
   real shrinkage on op counts. *)

let t = Alcotest.test_case
let reg = Prim.standard ()

let test_constant_folding_shrinks () =
  (* `1 + 2 * 3` inside a loop body folds down to one constant. *)
  let prog =
    let open Lang in
    let open Lang.Infix in
    program ~main:"m"
      [
        func "m" ~params:[ "x" ]
          [
            assign "acc" (flt 0.);
            while_
              (var "x" > flt 0.)
              [
                assign "acc" (var "acc" + (flt 1. + (flt 2. * flt 3.)));
                assign "x" (var "x" - flt 1.);
              ];
            return_ [ var "acc" ];
          ];
      ]
  in
  let cfg = Lower_cfg.lower prog in
  let before = Optimize.count_ops cfg in
  let opt = Optimize.run reg cfg in
  let after = Optimize.count_ops opt in
  Alcotest.(check bool)
    (Printf.sprintf "fewer ops (%d -> %d)" before after)
    true (after < before);
  (* And behaviour is identical. *)
  let c1 = Autobatch.compile ~registry:reg prog in
  let c2 = Autobatch.compile ~registry:reg ~optimize:true prog in
  let batch = [ Tensor.of_list [ 0.; 3.; 7. ] ] in
  List.iter2
    (fun a b -> Alcotest.(check bool) "same outputs" true (Tensor.equal a b))
    (Autobatch.run_pc c1 ~batch) (Autobatch.run_pc c2 ~batch)

let test_copy_propagation_and_dce () =
  (* y = x; z = y; return z  ==>  the moves collapse away. *)
  let prog =
    let open Lang in
    program ~main:"m"
      [
        func "m" ~params:[ "x" ]
          [
            assign "y" (var "x");
            assign "z" (var "y");
            assign "unused" (prim "mul" [ var "z"; flt 42. ]);
            return_ [ var "z" ];
          ];
      ]
  in
  let cfg = Lower_cfg.lower prog in
  let opt = Optimize.run reg cfg in
  let fn = Cfg.entry_func opt in
  (* Everything except argument plumbing for the return should vanish;
     certainly the unused multiply must be gone. *)
  let has_mul =
    Array.exists
      (fun (b : Cfg.block) ->
        List.exists
          (function Cfg.Prim_op { prim = "mul"; _ } -> true | _ -> false)
          b.Cfg.ops)
      fn.Cfg.blocks
  in
  Alcotest.(check bool) "dead multiply removed" false has_mul;
  Alcotest.(check bool) "op count small" true (Cfg.n_ops fn <= 2)

let test_rng_never_folded () =
  let prog =
    let open Lang in
    program ~main:"m"
      [
        func "m" ~params:[ "x" ]
          [
            assign "u" (prim "uniform" [ flt 0. ]);
            return_ [ prim "add" [ var "u"; var "x" ] ];
          ];
      ]
  in
  let cfg = Optimize.run reg (Lower_cfg.lower prog) in
  let fn = Cfg.entry_func cfg in
  let has_uniform =
    Array.exists
      (fun (b : Cfg.block) ->
        List.exists
          (function Cfg.Prim_op { prim = "uniform"; _ } -> true | _ -> false)
          b.Cfg.ops)
      fn.Cfg.blocks
  in
  Alcotest.(check bool) "uniform survives" true has_uniform;
  (* Different members still draw differently. *)
  let compiled = Autobatch.compile ~registry:reg ~optimize:true prog in
  let out = List.hd (Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ 0.; 0. ] ]) in
  Alcotest.(check bool) "members differ" true
    ((Tensor.data out).(0) <> (Tensor.data out).(1))

let test_optimizer_preserves_nuts_bitwise () =
  let model = Gaussian_model.model ~dim:5 () in
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| 5 |] in
  let cfg = Nuts.default_config ~eps:0.3 () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~optimize:true
      ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps:0.3 ~n_iter:5 ~n_burn:0 ~batch:3 () in
  let out = Autobatch.run_pc compiled ~batch in
  for member = 0 to 2 do
    let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter:5 in
    Alcotest.(check bool)
      (Printf.sprintf "optimized NUTS member %d bitwise" member)
      true
      (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd out) member))
  done;
  (* NUTS has no constant-only subexpressions to fold, so the op count
     must simply not grow. *)
  let plain = Autobatch.compile ~registry:reg prog in
  Alcotest.(check bool) "NUTS program did not grow" true
    (Optimize.count_ops compiled.Autobatch.cfg
    <= Optimize.count_ops plain.Autobatch.cfg)

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves random-program semantics" ~count:80
    Test_random_programs.arb_program (fun prog ->
      let reg = Prim.standard () in
      match Validate.check_program reg prog with
      | Error _ -> true
      | Ok () ->
        let plain =
          Autobatch.compile ~registry:reg
            ~input_shapes:[ Shape.scalar; Shape.scalar ] prog
        in
        let opt =
          Autobatch.compile ~registry:reg ~optimize:true
            ~input_shapes:[ Shape.scalar; Shape.scalar ] prog
        in
        let batch = Test_random_programs.batch_inputs in
        let a = Autobatch.run_pc plain ~batch in
        let b = Autobatch.run_pc opt ~batch in
        let c = Autobatch.run_local opt ~batch in
        List.for_all2 Tensor.equal a b && List.for_all2 Tensor.equal a c)

let suites =
  [
    ( "optimize",
      [
        t "constant folding shrinks" `Quick test_constant_folding_shrinks;
        t "copy propagation + DCE" `Quick test_copy_propagation_and_dce;
        t "RNG never folded" `Quick test_rng_never_folded;
        t "NUTS bitwise under optimization" `Quick test_optimizer_preserves_nuts_bitwise;
        QCheck_alcotest.to_alcotest prop_optimizer_preserves_semantics;
      ] );
  ]

let test_cse () =
  (* dot(v, v) computed twice in one block collapses to one. *)
  let prog =
    let open Lang in
    program ~main:"m"
      [
        func "m" ~params:[ "v" ]
          [
            assign "a" (prim "dot" [ var "v"; var "v" ]);
            assign "b" (prim "dot" [ var "v"; var "v" ]);
            return_ [ prim "add" [ var "a"; var "b" ] ];
          ];
      ]
  in
  let cfg = Optimize.run reg (Lower_cfg.lower prog) in
  let fn = Cfg.entry_func cfg in
  let dots =
    Array.fold_left
      (fun acc (b : Cfg.block) ->
        acc
        + List.length
            (List.filter
               (function Cfg.Prim_op { prim = "dot"; _ } -> true | _ -> false)
               b.Cfg.ops))
      0 fn.Cfg.blocks
  in
  Alcotest.(check int) "one dot remains" 1 dots;
  (* Semantics unchanged. *)
  let c = Autobatch.compile ~registry:reg ~optimize:true prog in
  let out =
    Autobatch.run_single c ~member:0 ~args:[ Tensor.of_list [ 1.; 2.; 3. ] ]
  in
  Alcotest.(check (float 0.)) "value" 28. (Tensor.item (List.hd out))

let test_cse_self_assignment_safe () =
  (* x = add(x, 1) twice must NOT collapse (each reads a different x). *)
  let prog =
    let open Lang in
    program ~main:"m"
      [
        func "m" ~params:[ "x" ]
          [
            assign "x" (prim "add" [ var "x"; flt 1. ]);
            assign "x" (prim "add" [ var "x"; flt 1. ]);
            return_ [ var "x" ];
          ];
      ]
  in
  let c = Autobatch.compile ~registry:reg ~optimize:true prog in
  let out = Autobatch.run_single c ~member:0 ~args:[ Tensor.scalar 5. ] in
  Alcotest.(check (float 0.)) "x incremented twice" 7. (Tensor.item (List.hd out))

let test_op_count_granularity () =
  (* count_ops = sum of func_op_counts = sum of block_op_counts, and the
     per-block rows line up with each function's actual block list. *)
  let prog =
    let open Lang in
    let open Lang.Infix in
    program ~main:"m"
      [
        func "m" ~params:[ "x" ]
          [
            call [ "y" ] "twice" [ var "x" ];
            if_ (var "y" > flt 4.) [ assign "y" (var "y" - flt 1.) ] [];
            return_ [ var "y" ];
          ];
        func "twice" ~params:[ "a" ] [ return_ [ var "a" + var "a" ] ];
      ]
  in
  let cfg = Lower_cfg.lower prog in
  let total = Optimize.count_ops cfg in
  let per_func = Optimize.func_op_counts cfg in
  let per_block = Optimize.block_op_counts cfg in
  Alcotest.(check int)
    "func_op_counts sums to count_ops" total
    (List.fold_left (fun acc (_, n) -> acc + n) 0 per_func);
  Alcotest.(check int)
    "block_op_counts sums to count_ops" total
    (List.fold_left
       (fun acc (_, counts) -> Array.fold_left ( + ) acc counts)
       0 per_block);
  List.iter
    (fun (fname, (f : Cfg.func)) ->
      let counts = List.assoc fname per_block in
      Alcotest.(check int)
        (fname ^ " row per block")
        (Array.length f.Cfg.blocks) (Array.length counts);
      Array.iteri
        (fun i b ->
          Alcotest.(check int)
            (Printf.sprintf "%s block %d" fname i)
            (List.length b.Cfg.ops) counts.(i))
        f.Cfg.blocks)
    cfg.Cfg.funcs

let suites =
  match suites with
  | [ (name, cases) ] ->
    [
      ( name,
        cases
        @ [
            t "common subexpressions" `Quick test_cse;
            t "CSE self-assignment safety" `Quick test_cse_self_assignment_safe;
            t "op-count granularity" `Quick test_op_count_granularity;
          ] );
    ]
  | other -> other
