(* End-to-end differential tests: every shared example program must agree
   across the single-example interpreter, the local static VM (both
   execution styles and all schedulers), and the program-counter VM. *)

let scalar_batch values = Tensor.of_array [| Array.length values |] values

let check_outputs msg expected actual =
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (output %d): %s vs %s" msg i (Tensor.to_string e)
           (Tensor.to_string a))
        true
        (Tensor.allclose ~rtol:1e-12 ~atol:1e-12 e a))
    (List.combine expected actual)

(* Run a compiled program every way we can and compare against the
   single-example interpreter, member by member. *)
let differential ?(options = Lower_stack.default_options) name program batch =
  let compiled =
    Autobatch.compile ~options
      ~input_shapes:(List.map (fun t -> Shape.drop_outer (Tensor.shape t)) batch)
      program
  in
  let z = (Tensor.shape (List.hd batch)).(0) in
  let reference =
    List.init z (fun b ->
        Autobatch.run_single compiled ~member:b
          ~args:(List.map (fun t -> Tensor.slice_row t b) batch))
  in
  let expected =
    List.mapi
      (fun i _ -> Tensor.stack_rows (List.map (fun r -> List.nth r i) reference))
      (List.hd reference)
  in
  let check_config label outputs = check_outputs (name ^ ": " ^ label) expected outputs in
  (* Local VM: both styles, all schedulers. *)
  List.iter
    (fun style ->
      List.iter
        (fun sched ->
          let config = { Local_vm.default_config with style; sched } in
          let label =
            Printf.sprintf "local/%s/%s"
              (match style with
              | Local_vm.Masking -> "mask"
              | Local_vm.Gather_scatter -> "gather"
              | Local_vm.Adaptive t -> Printf.sprintf "adaptive-%.2f" t)
              (Sched_policy.to_string sched)
          in
          check_config label (Autobatch.run_local ~config compiled ~batch))
        Sched_policy.all)
    [ Local_vm.Masking; Local_vm.Gather_scatter; Local_vm.Adaptive 0.5 ];
  (* PC VM: all schedulers, with and without the simulated optimizations. *)
  List.iter
    (fun sched ->
      let config = { Pc_vm.default_config with sched } in
      check_config ("pc/" ^ Sched_policy.to_string sched) (Autobatch.run_pc ~config compiled ~batch))
    Sched_policy.all;
  let naive = { Pc_vm.default_config with naive_stack_writes = true; top_cache = false } in
  check_config "pc/naive" (Autobatch.run_pc ~config:naive compiled ~batch);
  (* Precompiled executor. *)
  check_config "jit" (Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch);
  (* Optimizer on. *)
  let optimized =
    Autobatch.compile ~options ~optimize:true
      ~input_shapes:(List.map (fun t -> Shape.drop_outer (Tensor.shape t)) batch)
      program
  in
  check_config "pc/optimized" (Autobatch.run_pc optimized ~batch);
  (* PC VM without shape inference: lazy storage allocation. Disabling the
     save-liveness optimization pushes never-written variables, which
     requires preallocated storage, so only the default options support
     lazy allocation. *)
  if options = Lower_stack.default_options then begin
    let lazy_compiled = Autobatch.compile ~options program in
    check_config "pc/lazy-alloc" (Autobatch.run_pc lazy_compiled ~batch)
  end

let test_fib () =
  differential "fib" Test_programs.fib [ scalar_batch [| 3.; 7.; 4.; 5.; 0.; 1.; 10. |] ];
  (* And with O2/O3 disabled: everything stacked/masked must still agree. *)
  differential
    ~options:{ Lower_stack.detect_temporaries = false; save_live_only = false }
    "fib-noopt" Test_programs.fib
    [ scalar_batch [| 3.; 7.; 4.; 5. |] ]

let test_fib_matches_spec () =
  let compiled = Autobatch.compile Test_programs.fib in
  let batch = [ scalar_batch [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] ] in
  let out = List.hd (Autobatch.run_pc compiled ~batch) in
  Array.iteri
    (fun i n ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "fib(%d)" (int_of_float n))
        (Test_programs.fib_spec (int_of_float n))
        (Tensor.data out).(i))
    [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]

let test_fact_loop () =
  differential "fact" Test_programs.fact_loop [ scalar_batch [| 0.; 1.; 5.; 10.; 3. |] ];
  let compiled = Autobatch.compile Test_programs.fact_loop in
  let out =
    List.hd (Autobatch.run_pc compiled ~batch:[ scalar_batch [| 6.; 0.; 3. |] ])
  in
  Alcotest.(check (float 0.)) "6!" 720. (Tensor.data out).(0);
  Alcotest.(check (float 0.)) "0!" 1. (Tensor.data out).(1);
  Alcotest.(check (float 0.)) "3!" 6. (Tensor.data out).(2)

let test_nonrecursive_has_no_stacks () =
  let compiled =
    Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.fact_loop
  in
  let _, _, stacked = Stack_ir.stats compiled.Autobatch.stack in
  Alcotest.(check int) "no stacked variables in a non-recursive program" 0 stacked

let test_fib_has_stacks () =
  let compiled = Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.fib in
  let _, _, stacked = Stack_ir.stats compiled.Autobatch.stack in
  Alcotest.(check bool) "fib needs stacked variables" true (stacked > 0)

let test_even_odd () =
  differential "even_odd" Test_programs.even_odd
    [ scalar_batch [| 0.; 1.; 2.; 3.; 7.; 8. |] ]

let test_collatz () =
  differential "collatz" Test_programs.collatz
    [ scalar_batch [| 1.; 2.; 3.; 6.; 7.; 27. |] ];
  let compiled = Autobatch.compile Test_programs.collatz in
  let out = List.hd (Autobatch.run_pc compiled ~batch:[ scalar_batch [| 27. |] ]) in
  Alcotest.(check (float 0.)) "collatz(27)" (Test_programs.collatz_spec 27)
    (Tensor.data out).(0)

let test_divmod () =
  differential "divmod" Test_programs.divmod
    [ scalar_batch [| 17.; 9.; 42.; 5. |]; scalar_batch [| 5.; 3.; 7.; 5. |] ]

let test_vector_recursion () =
  let v =
    Tensor.init [| 3; 4 |] (fun idx -> float_of_int ((idx.(0) * 4) + idx.(1) + 1))
  in
  differential "vec_double" Test_programs.vec_double
    [ v; scalar_batch [| 0.; 3.; 5. |] ]

let test_ackermann () =
  differential "ackermann" Test_programs.ackermann
    [ scalar_batch [| 0.; 1.; 2.; 2. |]; scalar_batch [| 3.; 3.; 2.; 3. |] ];
  let compiled = Autobatch.compile Test_programs.ackermann in
  let out =
    List.hd
      (Autobatch.run_pc compiled
         ~batch:[ scalar_batch [| 2. |]; scalar_batch [| 3. |] ])
  in
  Alcotest.(check (float 0.)) "ack(2,3)" (float_of_int (Test_programs.ack_spec 2 3))
    (Tensor.data out).(0)

let test_random_walk () =
  (* Randomized program: counter-based RNG must make all paths agree
     bitwise, including across divergent loop trip counts. *)
  differential "random_walk" Test_programs.random_walk
    [ scalar_batch [| 0.; 1.; 5.; 17.; 3. |] ]

let test_run_unbatched_matches () =
  let compiled = Autobatch.compile Test_programs.fib in
  let batch = [ scalar_batch [| 4.; 6. |] ] in
  let a = Autobatch.run_unbatched compiled ~batch in
  let b = Autobatch.run_pc compiled ~batch in
  check_outputs "unbatched vs pc" a b

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "fib differential" `Quick test_fib;
        Alcotest.test_case "fib values" `Quick test_fib_matches_spec;
        Alcotest.test_case "factorial loop" `Quick test_fact_loop;
        Alcotest.test_case "non-recursive => no data stacks" `Quick
          test_nonrecursive_has_no_stacks;
        Alcotest.test_case "fib => stacked variables" `Quick test_fib_has_stacks;
        Alcotest.test_case "mutual recursion" `Quick test_even_odd;
        Alcotest.test_case "collatz" `Quick test_collatz;
        Alcotest.test_case "multi-result calls" `Quick test_divmod;
        Alcotest.test_case "vector-valued recursion" `Quick test_vector_recursion;
        Alcotest.test_case "ackermann" `Quick test_ackermann;
        Alcotest.test_case "randomized program" `Quick test_random_walk;
        Alcotest.test_case "unbatched baseline agrees" `Quick test_run_unbatched_matches;
      ] );
  ]
