(* Tests for the divergence profiler: the Occupancy event's invariant on
   every runtime, Obs_prof attribution (conservation against the engine
   clock, golden folded-stacks export), the profiler-never-perturbs
   acceptance criterion across all five runtimes, the metrics-registry
   merge it relies on, and the event-driven occupancy gauge. *)

let t = Alcotest.test_case

(* ---------- fixtures ---------- *)

let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let fib_compiled =
  lazy (Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program)

let fib_batch z =
  [ Tensor.init [| z |] (fun i -> float_of_int (3 + (i.(0) mod 5))) ]

(* ---------- every event kind has a distinct, stable tag ---------- *)

let all_events : Obs_sink.event list =
  (* One value per constructor; extending the event type without extending
     this list (and kind_name) is caught by the compiler's exhaustiveness
     check on kind_name itself, and this test pins the tag strings. *)
  [
    Obs_sink.Step { shard = 0; step = 1; block = 0 };
    Obs_sink.Launch { kind = Obs_sink.Kernel; name = "k" };
    Obs_sink.Launched { kind = Obs_sink.Kernel; name = "k"; t0 = 0.; t1 = 1. };
    Obs_sink.Collective { name = "all_reduce"; bytes = 8.; t0 = 0.; t1 = 1. };
    Obs_sink.Request_enqueued { id = 0; at = 0. };
    Obs_sink.Request_shed { id = 0; at = 0. };
    Obs_sink.Request_rejected { id = 0; at = 0. };
    Obs_sink.Request_completed { id = 0; queued = 0.; started = 0.; finished = 1. };
    Obs_sink.Checkpoint { step = 1; bytes = 8 };
    Obs_sink.Restore { step = 1 };
    Obs_sink.Occupancy
      { shard = 0; step = 1; block = 0; active = 1; live = 2; total = 4 };
  ]

let test_kind_names_distinct () =
  let tags = List.map Obs_sink.kind_name all_events in
  Alcotest.(check (list string))
    "stable tags"
    [
      "step"; "launch"; "launched"; "collective"; "enqueue"; "shed";
      "reject"; "complete"; "checkpoint"; "restore"; "occupancy";
    ]
    tags;
  Alcotest.(check int) "all distinct"
    (List.length tags)
    (List.length (List.sort_uniq compare tags))

let test_tag_shard_rewrites_occupancy () =
  let got = ref [] in
  let sink = Obs_sink.tag_shard 3 (fun ev -> got := ev :: !got) in
  sink (Obs_sink.Step { shard = 0; step = 1; block = 2 });
  sink
    (Obs_sink.Occupancy
       { shard = 0; step = 1; block = 2; active = 1; live = 2; total = 4 });
  sink (Obs_sink.Checkpoint { step = 1; bytes = 8 });
  match List.rev !got with
  | [
   Obs_sink.Step { shard = 3; _ };
   Obs_sink.Occupancy { shard = 3; active = 1; live = 2; total = 4; _ };
   Obs_sink.Checkpoint _;
  ] ->
    ()
  | _ -> Alcotest.fail "tag_shard should rewrite Step and Occupancy shards only"

(* ---------- metrics: merge and raw-bucket export ---------- *)

let test_metrics_merge () =
  let a = Obs_metrics.create () and b = Obs_metrics.create () in
  Obs_metrics.incr ~by:3 (Obs_metrics.counter a "c");
  Obs_metrics.incr ~by:4 (Obs_metrics.counter b "c");
  Obs_metrics.incr ~by:7 (Obs_metrics.counter b "only_b");
  Obs_metrics.set (Obs_metrics.gauge a "g") 1.5;
  Obs_metrics.set (Obs_metrics.gauge b "g") 2.;
  let ha = Obs_metrics.histogram a "h" and hb = Obs_metrics.histogram b "h" in
  List.iter (Obs_metrics.observe ha) [ 0.1; 0.2 ];
  List.iter (Obs_metrics.observe hb) [ 0.4; 0.05 ];
  Obs_metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Obs_metrics.count (Obs_metrics.counter a "c"));
  Alcotest.(check int) "missing counter created" 7
    (Obs_metrics.count (Obs_metrics.counter a "only_b"));
  Alcotest.(check (float 0.)) "gauges sum" 3.5
    (Obs_metrics.value (Obs_metrics.gauge a "g"));
  Alcotest.(check int) "histogram count" 4 (Obs_metrics.hist_count ha);
  Alcotest.(check (float 1e-12)) "histogram sum" 0.75 (Obs_metrics.hist_sum ha);
  Alcotest.(check (float 0.)) "histogram min" 0.05 (Obs_metrics.hist_min ha);
  Alcotest.(check (float 0.)) "histogram max" 0.4 (Obs_metrics.hist_max ha);
  (* The source is untouched. *)
  Alcotest.(check int) "src counter unchanged" 4
    (Obs_metrics.count (Obs_metrics.counter b "c"));
  Alcotest.(check int) "src histogram unchanged" 2 (Obs_metrics.hist_count hb);
  (* A disabled target absorbs nothing. *)
  let dead = Obs_metrics.create ~enabled:false () in
  Obs_metrics.merge ~into:dead b;
  Alcotest.(check int) "disabled target stays dead" 0
    (Obs_metrics.count (Obs_metrics.counter dead "c"))

let test_hist_buckets_json () =
  let m = Obs_metrics.create () in
  let h = Obs_metrics.histogram m "h" in
  List.iter (Obs_metrics.observe h) [ 0.; 0.25; 0.25; 1.0 ];
  (match Obs_metrics.hist_to_json h with
  | Obs_json.Obj fields ->
    Alcotest.(check bool) "no buckets by default" false
      (List.mem_assoc "buckets" fields)
  | _ -> Alcotest.fail "hist_to_json should be an object");
  match Obs_metrics.hist_to_json ~buckets:true h with
  | Obs_json.Obj fields -> (
    match List.assoc_opt "buckets" fields with
    | Some (Obs_json.List rows) ->
      (* Only occupied buckets, and their counts cover every observation. *)
      let count row =
        match Obs_json.member "count" row with
        | Some (Obs_json.Int n) -> n
        | _ -> Alcotest.fail "bucket row missing count"
      in
      let num k row =
        match Obs_json.member k row with
        | Some (Obs_json.Float x) -> x
        | Some (Obs_json.Int n) -> float_of_int n
        | _ -> Alcotest.failf "bucket row missing %s" k
      in
      Alcotest.(check int) "bucket counts sum to total" 4
        (List.fold_left (fun acc r -> acc + count r) 0 rows);
      List.iter
        (fun r ->
          Alcotest.(check bool) "occupied" true (count r > 0);
          Alcotest.(check bool) "lo <= hi" true (num "lo" r <= num "hi" r))
        rows;
      (* The zero observation lands in the degenerate [0, 0] bucket. *)
      Alcotest.(check bool) "zero bucket present" true
        (List.exists (fun r -> num "lo" r = 0. && num "hi" r = 0.) rows)
    | _ -> Alcotest.fail "buckets field missing")
  | _ -> Alcotest.fail "hist_to_json should be an object"

(* ---------- Occupancy invariant on every runtime ---------- *)

(* 0 <= active <= live <= total, on every event, from every runtime; the
   sink may fire from shard domains, so the tallies are mutex-guarded. *)
let occupancy_checker () =
  let mu = Mutex.create () in
  let seen = ref 0 and bad = ref 0 in
  let sink ev =
    match ev with
    | Obs_sink.Occupancy { active; live; total; _ } ->
      Mutex.protect mu (fun () ->
          incr seen;
          if not (0 <= active && active <= live && live <= total) then incr bad)
    | _ -> ()
  in
  (sink, seen, bad)

let check_occupancy name run =
  let sink, seen, bad = occupancy_checker () in
  run sink;
  Alcotest.(check bool) (name ^ ": saw occupancy events") true (!seen > 0);
  Alcotest.(check int) (name ^ ": invariant violations") 0 !bad

let test_occupancy_invariant_pc () =
  let compiled = Lazy.force fib_compiled in
  check_occupancy "pc" (fun sink ->
      let config = { Pc_vm.default_config with sink = Some sink } in
      ignore (Autobatch.run_pc ~config compiled ~batch:(fib_batch 8)))

let test_occupancy_invariant_jit () =
  let compiled = Lazy.force fib_compiled in
  let exe = Autobatch.jit compiled ~batch:8 in
  check_occupancy "jit" (fun sink ->
      ignore (Pc_jit.run ~sink exe ~batch:(fib_batch 8)))

let test_occupancy_invariant_local () =
  let compiled = Lazy.force fib_compiled in
  check_occupancy "local" (fun sink ->
      let config = { Local_vm.default_config with sink = Some sink } in
      ignore (Autobatch.run_local ~config compiled ~batch:(fib_batch 8)))

let test_occupancy_invariant_shard () =
  let compiled = Lazy.force fib_compiled in
  check_occupancy "shard" (fun sink ->
      let config =
        {
          Shard_vm.default_config with
          mesh = Mesh.gpu_pod ~n:2 ();
          mode = Some Engine.Fused;
          sink = Some sink;
        }
      in
      ignore (Autobatch.run_sharded ~config compiled ~batch:(fib_batch 8)))

let test_occupancy_invariant_server () =
  let compiled = Lazy.force fib_compiled in
  let requests =
    List.init 4 (fun id ->
        Request.make ~id ~member:(id * 16) ~arrival:0.
          ~cost_hint:(float_of_int (4 + id))
          ~program:compiled
          ~inputs:[ Tensor.of_list [ float_of_int (4 + id) ] ]
          ())
  in
  check_occupancy "server" (fun sink ->
      let config =
        {
          Server.default_config with
          lanes = 2;
          vm = { Pc_vm.default_config with sink = Some sink };
        }
      in
      ignore (Server.run ~config ~program:compiled requests))

(* ---------- the occupancy gauge is event-fed ---------- *)

let test_occupancy_feeds_gauge () =
  (* The instrument's live-lane gauge and a sink see the same events, so
     live_samples equals the event count and mean_occupancy equals the
     ratio of the summed fields. *)
  let compiled = Lazy.force fib_compiled in
  let mu = Mutex.create () in
  let n = ref 0 and live_sum = ref 0 and total_sum = ref 0 in
  let sink ev =
    match ev with
    | Obs_sink.Occupancy { live; total; _ } ->
      Mutex.protect mu (fun () ->
          incr n;
          live_sum := !live_sum + live;
          total_sum := !total_sum + total)
    | _ -> ()
  in
  let ins = Instrument.create () in
  let config =
    { Pc_vm.default_config with instrument = Some ins; sink = Some sink }
  in
  ignore (Autobatch.run_pc ~config compiled ~batch:(fib_batch 8));
  Alcotest.(check bool) "saw events" true (!n > 0);
  Alcotest.(check int) "one gauge sample per event" !n (Instrument.live_samples ins);
  Alcotest.(check (float 1e-12))
    "mean occupancy is the event ratio"
    (float_of_int !live_sum /. float_of_int !total_sum)
    (Instrument.mean_occupancy ins)

(* ---------- attribution: conservation against the engine clock ---------- *)

let check_conservation name total prof =
  let attributed = Obs_prof.attributed prof in
  let rel = Float.abs (attributed -. total) /. total in
  if rel > 1e-9 then
    Alcotest.failf "%s: attributed %.12g vs engine %.12g (rel %.3g)" name
      attributed total rel;
  Alcotest.(check bool) (name ^ ": has block rows") true
    (Obs_prof.block_rows prof <> []);
  List.iter
    (fun (r : Obs_prof.block_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: block %d effective <= charged" name r.block)
        true
        (r.effective <= r.charged +. 1e-12))
    (Obs_prof.block_rows prof);
  let u = Obs_prof.utilization prof in
  Alcotest.(check bool) (name ^ ": utilization in (0,1]") true (u > 0. && u <= 1.);
  Alcotest.(check (float 1e-9))
    (name ^ ": waste fractions complete the lane budget")
    1.
    (u +. Obs_prof.divergence_waste prof +. Obs_prof.idle_waste prof)

let test_conservation_pc () =
  let compiled = Lazy.force fib_compiled in
  let prof = Obs_prof.create () in
  let sink = Obs_prof.sink prof in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.set_sink engine sink;
  let config =
    { Pc_vm.default_config with engine = Some engine; sink = Some sink }
  in
  ignore (Autobatch.run_pc ~config compiled ~batch:(fib_batch 16));
  check_conservation "pc" (Engine.elapsed engine) prof

let test_conservation_jit () =
  let compiled = Lazy.force fib_compiled in
  let exe = Autobatch.jit compiled ~batch:16 in
  let prof = Obs_prof.create () in
  let sink = Obs_prof.sink prof in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.set_sink engine sink;
  ignore (Pc_jit.run ~engine ~sink exe ~batch:(fib_batch 16));
  check_conservation "jit" (Engine.elapsed engine) prof

let test_conservation_shard () =
  (* Each shard has its own engine and domain; attribution must conserve
     the sum of the per-shard clocks (collectives live on the mesh
     timeline and are excluded on both sides). *)
  let compiled = Lazy.force fib_compiled in
  let prof = Obs_prof.create () in
  let config =
    {
      Shard_vm.default_config with
      mesh = Mesh.gpu_pod ~n:2 ();
      mode = Some Engine.Fused;
      sink = Some (Obs_prof.sink prof);
    }
  in
  let r = Autobatch.run_sharded ~config compiled ~batch:(fib_batch 16) in
  let total = Array.fold_left ( +. ) 0. r.Shard_vm.shard_times in
  check_conservation "shard" total prof

(* ---------- the profiler must not perturb execution ---------- *)

let check_prof_unperturbed name run =
  let outs_off, clock_off = run None in
  let prof = Obs_prof.create () in
  let outs_on, clock_on = run (Some (Obs_prof.sink prof)) in
  Alcotest.(check bool)
    (name ^ ": profiled something")
    true
    (Obs_prof.supersteps prof > 0);
  Alcotest.(check bool)
    (name ^ ": clock identical")
    true
    (Int64.equal (Int64.bits_of_float clock_off) (Int64.bits_of_float clock_on));
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output %d bitwise" name i)
        true (Tensor.equal a b))
    (List.combine outs_off outs_on)

let test_prof_off_on_pc () =
  let compiled = Lazy.force fib_compiled in
  check_prof_unperturbed "pc" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config = { Pc_vm.default_config with engine = Some engine; sink } in
      let outs = Autobatch.run_pc ~config compiled ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_prof_off_on_jit () =
  let compiled = Lazy.force fib_compiled in
  let exe = Autobatch.jit compiled ~batch:8 in
  check_prof_unperturbed "jit" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let outs = Pc_jit.run ~engine ?sink exe ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_prof_off_on_local () =
  let compiled = Lazy.force fib_compiled in
  check_prof_unperturbed "local" (fun sink ->
      let engine = Engine.create ~device:Device.cpu ~mode:Engine.Eager () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config = { Local_vm.default_config with engine = Some engine; sink } in
      let outs = Autobatch.run_local ~config compiled ~batch:(fib_batch 8) in
      (outs, Engine.elapsed engine))

let test_prof_off_on_shard () =
  let compiled = Lazy.force fib_compiled in
  check_prof_unperturbed "shard" (fun sink ->
      let config =
        {
          Shard_vm.default_config with
          mesh = Mesh.gpu_pod ~n:2 ();
          mode = Some Engine.Fused;
          sink;
        }
      in
      let r = Autobatch.run_sharded ~config compiled ~batch:(fib_batch 8) in
      (r.Shard_vm.outputs, r.Shard_vm.sim_time))

let test_prof_off_on_server () =
  let compiled = Lazy.force fib_compiled in
  let requests () =
    List.init 4 (fun id ->
        Request.make ~id ~member:(id * 16) ~arrival:0.
          ~cost_hint:(float_of_int (4 + id))
          ~program:compiled
          ~inputs:[ Tensor.of_list [ float_of_int (4 + id) ] ]
          ())
  in
  check_prof_unperturbed "server" (fun sink ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      (match sink with Some s -> Engine.set_sink engine s | None -> ());
      let config =
        {
          Server.default_config with
          lanes = 2;
          vm = { Pc_vm.default_config with engine = Some engine; sink };
        }
      in
      let stats = Server.run ~config ~program:compiled (requests ()) in
      let outs =
        List.concat_map
          (fun (r : Server.record) -> r.Server.outputs)
          stats.Server.completions
      in
      (outs, stats.Server.makespan))

(* ---------- golden folded-stacks export ---------- *)

(* A hand-fed event sequence covering every attribution path: an
   unattributed span before the first step, two framed blocks (one with
   divergence), a frameless block, a bookkeeping kernel, a gap (host
   time), and a collective on its own timeline. The folded export is
   compared byte-for-byte with test/folded_golden.txt; regenerate every
   golden at once with AUTOBATCH_BLESS=/abs/path/to/test (the directory
   to write into) after a deliberate format change. *)
let golden_prof () =
  let frames = [| [| "main"; "main#0" |]; [| "main"; "f"; "f#0" |] |] in
  let p = Obs_prof.create ~frames () in
  let s = Obs_prof.sink p in
  s (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = "block ?"; t0 = 0.; t1 = 1e-4 });
  s (Obs_sink.Step { shard = 0; step = 1; block = 0 });
  s (Obs_sink.Occupancy
       { shard = 0; step = 1; block = 0; active = 4; live = 6; total = 8 });
  s (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = "block 0"; t0 = 1e-4; t1 = 1.1e-3 });
  s (Obs_sink.Launched
       { kind = Obs_sink.Kernel; name = "transfer"; t0 = 1.1e-3; t1 = 1.2e-3 });
  s (Obs_sink.Step { shard = 0; step = 2; block = 1 });
  s (Obs_sink.Occupancy
       { shard = 0; step = 2; block = 1; active = 2; live = 2; total = 8 });
  (* The engine advanced 1.2e-3 -> 1.5e-3 without a span: host time. *)
  s (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = "block 1"; t0 = 1.5e-3; t1 = 2.5e-3 });
  s (Obs_sink.Collective
       { name = "all_reduce"; bytes = 4096.; t0 = 10.; t1 = 10.3 });
  s (Obs_sink.Step { shard = 0; step = 3; block = 2 });
  s (Obs_sink.Occupancy
       { shard = 0; step = 3; block = 2; active = 8; live = 8; total = 8 });
  s (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = "block 2"; t0 = 2.5e-3; t1 = 2.7e-3 });
  p

let read_file path = In_channel.with_open_text path In_channel.input_all

let test_folded_golden () =
  let p = golden_prof () in
  (* The synthetic feed's books first: engine clock ends at 2.7e-3. *)
  Alcotest.(check (float 1e-15)) "attributed = engine clock" 2.7e-3
    (Obs_prof.attributed p);
  Alcotest.(check (float 1e-15)) "host gap" 3e-4 (Obs_prof.host_time p);
  Alcotest.(check (float 1e-15)) "unattributed" 1e-4 (Obs_prof.unattributed_time p);
  Alcotest.(check (float 1e-15)) "collective excluded" 0.3
    (Obs_prof.collective_time p);
  Alcotest.(check int) "supersteps" 3 (Obs_prof.supersteps p);
  Alcotest.(check (float 1e-12)) "utilization" (14. /. 24.)
    (Obs_prof.utilization p);
  Alcotest.(check (float 1e-12)) "divergence waste" (2. /. 24.)
    (Obs_prof.divergence_waste p);
  Alcotest.(check (float 1e-12)) "idle waste" (8. /. 24.)
    (Obs_prof.idle_waste p);
  let m = Obs_prof.metrics p in
  Alcotest.(check int) "superstep counter" 3
    (Obs_metrics.count (Obs_metrics.counter m "supersteps"));
  Alcotest.(check int) "block launch counter" 4
    (Obs_metrics.count (Obs_metrics.counter m "block_launches"));
  let got = Obs_prof.folded p in
  match Sys.getenv_opt "AUTOBATCH_BLESS" with
  | Some dir when dir <> "" ->
    let path = Filename.concat dir "folded_golden.txt" in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc got)
  | _ ->
    Alcotest.(check string)
      "folded export matches golden"
      (read_file "folded_golden.txt")
      got

(* ---------- live folded export over the real callgraph ---------- *)

let test_live_folded () =
  let compiled = Lazy.force fib_compiled in
  let frames =
    Profile.flame_frames compiled.Autobatch.stack compiled.Autobatch.cfg
  in
  Alcotest.(check int) "one frame stack per merged block"
    (Array.length compiled.Autobatch.stack.Stack_ir.origin)
    (Array.length frames);
  Array.iter
    (fun stack ->
      Alcotest.(check bool) "stack rooted at entry" true
        (Array.length stack >= 2 && stack.(0) = "fib");
      let leaf = stack.(Array.length stack - 1) in
      Alcotest.(check bool) "leaf is fn#local" true
        (String.length leaf > 4 && String.contains leaf '#'))
    frames;
  let prof = Obs_prof.create ~frames () in
  let sink = Obs_prof.sink prof in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.set_sink engine sink;
  let config =
    { Pc_vm.default_config with engine = Some engine; sink = Some sink }
  in
  ignore (Autobatch.run_pc ~config compiled ~batch:(fib_batch 8));
  let folded = Obs_prof.folded prof in
  Alcotest.(check bool) "non-empty" true (String.length folded > 0);
  let lines = String.split_on_char '\n' (String.trim folded) in
  List.iter
    (fun line ->
      (* flamegraph.pl grammar: "frame(;frame)* <positive int>". *)
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no weight separator: %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let weight = String.sub line (i + 1) (String.length line - i - 1) in
        Alcotest.(check bool) "stack non-empty" true (String.length stack > 0);
        (match int_of_string_opt weight with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.failf "bad weight in %S" line))
    lines;
  Alcotest.(check bool) "some stack reaches a fib block" true
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "fib;")
       lines)

let suites =
  [
    ( "prof",
      [
        t "event tags distinct and stable" `Quick test_kind_names_distinct;
        t "tag_shard rewrites occupancy" `Quick test_tag_shard_rewrites_occupancy;
        t "metrics merge" `Quick test_metrics_merge;
        t "histogram raw buckets json" `Quick test_hist_buckets_json;
        t "occupancy invariant pc" `Quick test_occupancy_invariant_pc;
        t "occupancy invariant jit" `Quick test_occupancy_invariant_jit;
        t "occupancy invariant local" `Quick test_occupancy_invariant_local;
        t "occupancy invariant shard" `Quick test_occupancy_invariant_shard;
        t "occupancy invariant server" `Quick test_occupancy_invariant_server;
        t "occupancy feeds the gauge" `Quick test_occupancy_feeds_gauge;
        t "conservation pc" `Quick test_conservation_pc;
        t "conservation jit" `Quick test_conservation_jit;
        t "conservation shard" `Quick test_conservation_shard;
        t "profiler off/on pc" `Quick test_prof_off_on_pc;
        t "profiler off/on jit" `Quick test_prof_off_on_jit;
        t "profiler off/on local" `Quick test_prof_off_on_local;
        t "profiler off/on shard" `Quick test_prof_off_on_shard;
        t "profiler off/on server" `Quick test_prof_off_on_server;
        t "golden folded stacks" `Quick test_folded_golden;
        t "live folded over the callgraph" `Quick test_live_folded;
      ] );
  ]
