(* Differential fuzzing: generate random well-formed programs and check
   that the single-example interpreter, the local static VM (both
   execution styles) and the program-counter VM agree bitwise on every
   batch member.

   Termination is guaranteed by construction: while loops only count a
   private counter down from a small constant, and the optional recursive
   function strictly decreases its first argument toward a base case. *)

module G = QCheck.Gen

(* The fixed mutable variable pool: all defined at entry, so any read is
   safe anywhere. *)
let pool = [ "a"; "b"; "c"; "d" ]

let arith_prims = [ "add"; "sub"; "mul"; "min"; "max" ]
let unary_prims = [ "neg"; "abs"; "sign"; "floor"; "tanh"; "sigmoid" ]
let cmp_prims = [ "le"; "lt"; "ge"; "gt"; "eq"; "ne" ]

let gen_const =
  G.oneof
    [
      G.map float_of_int (G.int_range (-4) 4);
      G.return 0.5;
      G.return (-1.5);
      G.return 2.25;
    ]

let ( let* ) g f = G.( >>= ) g f

let rec gen_expr vars depth =
  let leaf =
    G.oneof [ G.map Lang.var (G.oneofl vars); G.map Lang.flt gen_const ]
  in
  if depth = 0 then leaf
  else
    G.frequency
      [
        (2, leaf);
        ( 3,
          let* name = G.oneofl arith_prims in
          let* e1 = gen_expr vars (depth - 1) in
          let* e2 = gen_expr vars (depth - 1) in
          G.return (Lang.prim name [ e1; e2 ]) );
        ( 1,
          let* name = G.oneofl unary_prims in
          let* e = gen_expr vars (depth - 1) in
          G.return (Lang.prim name [ e ]) );
        ( 1,
          let* c = gen_cmp vars (depth - 1) in
          let* e1 = gen_expr vars (depth - 1) in
          let* e2 = gen_expr vars (depth - 1) in
          G.return (Lang.prim "select" [ c; e1; e2 ]) );
      ]

and gen_cmp vars depth =
  let* name = G.oneofl cmp_prims in
  let* e1 = gen_expr vars depth in
  let* e2 = gen_expr vars depth in
  G.return (Lang.prim name [ e1; e2 ])

(* Statement generators produce small statement lists plus a size cost. *)
let rec gen_stmts ~read_vars ~write_vars ~loop_id ~allow_call ~size =
  if size <= 0 then G.return []
  else
    let* stmts, cost = gen_stmt ~read_vars ~write_vars ~loop_id ~allow_call ~size in
    let* rest = gen_stmts ~read_vars ~write_vars ~loop_id ~allow_call ~size:(size - cost) in
    G.return (stmts @ rest)

and gen_stmt ~read_vars ~write_vars ~loop_id ~allow_call ~size =
  G.frequency
    ([
       ( 4,
         let* x = G.oneofl write_vars in
         let* e = gen_expr read_vars 3 in
         G.return ([ Lang.assign x e ], 1) );
       ( 2,
         let* c = gen_cmp read_vars 2 in
         let* then_body =
           gen_stmts ~read_vars ~write_vars ~loop_id ~allow_call ~size:(size / 2)
         in
         let* else_body =
           gen_stmts ~read_vars ~write_vars ~loop_id ~allow_call ~size:(size / 2)
         in
         G.return ([ Lang.if_ c then_body else_body ], 2) );
       ( 1,
         (* Bounded loop with a private counter variable. *)
         let* trips = G.int_range 0 3 in
         let* body =
           gen_stmts ~read_vars ~write_vars ~loop_id ~allow_call ~size:(size / 2)
         in
         let counter = Printf.sprintf "loop%d" !loop_id in
         incr loop_id;
         let open Lang in
         G.return
           ( [
               assign counter (flt (float_of_int trips));
               while_
                 (prim "gt" [ var counter; flt 0. ])
                 (body @ [ assign counter (prim "sub" [ var counter; flt 1. ]) ]);
             ],
             3 ) );
     ]
    @
    if allow_call then
      [
        ( 1,
          let* n = G.int_range 0 4 in
          let* arg = gen_expr read_vars 2 in
          let* dst = G.oneofl write_vars in
          G.return ([ Lang.call [ dst ] "rec" [ Lang.flt (float_of_int n); arg ] ], 2)
        );
      ]
    else [])

let loop_seed = ref 0

let gen_program =
  let* with_rec = G.bool in
  let* main_body =
    gen_stmts ~read_vars:pool ~write_vars:pool ~loop_id:loop_seed
      ~allow_call:with_rec ~size:8
  in
  let* r1 = gen_expr pool 3 in
  let* r2 = gen_expr pool 3 in
  let open Lang in
  let main =
    func "main" ~params:[ "p"; "q" ]
      ([ assign "a" (var "p"); assign "b" (var "q");
         assign "c" (prim "add" [ var "p"; var "q" ]); assign "d" (flt 1.) ]
      @ main_body
      @ [ return_ [ r1; r2 ] ])
  in
  if not with_rec then G.return (program ~main:"main" [ main ])
  else
    (* Inside the recursive function only [acc] is writable: [n] must
       strictly decrease toward the base case for termination. *)
    let* rec_body =
      gen_stmts ~read_vars:[ "n"; "acc" ] ~write_vars:[ "acc" ]
        ~loop_id:loop_seed ~allow_call:false ~size:4
    in
    let* combine = gen_expr [ "n"; "acc"; "sub_result" ] 2 in
    let recf =
      func "rec" ~params:[ "n"; "acc" ]
        [
          if_
            (prim "le" [ var "n"; flt 0. ])
            [ return_ [ var "acc" ] ]
            (rec_body
            @ [
                call [ "sub_result" ] "rec"
                  [ prim "sub" [ var "n"; flt 1. ]; var "acc" ];
                return_ [ combine ];
              ]);
        ]
    in
    G.return (program ~main:"main" [ main; recf ])

let print_program p = Format.asprintf "%a" Lang.pp_program p

let arb_program = QCheck.make ~print:print_program gen_program

(* One fixed input batch; member index also seeds nothing here (these
   programs draw no randomness), but exercising several members checks
   lane independence. *)
let batch_inputs =
  [
    Tensor.of_list [ -2.; 0.; 1.; 3.; 0.5 ];
    Tensor.of_list [ 4.; -1.; 0.; 2.; -0.5 ];
  ]

let runs_agree prog =
  let reg = Prim.standard () in
  match Validate.check_program reg prog with
  | Error msgs ->
    QCheck.Test.fail_reportf "generator produced invalid program: %s"
      (String.concat "; " msgs)
  | Ok () ->
    let compiled =
      Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar; Shape.scalar ]
        prog
    in
    let z = 5 in
    let expected =
      List.init z (fun b ->
          Autobatch.run_single compiled ~member:b
            ~args:(List.map (fun t -> Tensor.slice_row t b) batch_inputs))
    in
    let check_run label outputs =
      List.iteri
        (fun b per_member ->
          List.iteri
            (fun i expect ->
              let got = Tensor.slice_row (List.nth outputs i) b in
              if not (Tensor.equal expect got) then
                QCheck.Test.fail_reportf
                  "%s disagrees with interpreter on member %d output %d:\n\
                   expected %s, got %s\nprogram:\n%s"
                  label b i (Tensor.to_string expect) (Tensor.to_string got)
                  (print_program prog))
            per_member)
        expected
    in
    (* CFG-level interpreter: localizes lowering bugs. *)
    List.iteri
      (fun b per_member ->
        let args = List.map (fun t -> Tensor.slice_row t b) batch_inputs in
        let got = Interp_cfg.run reg compiled.Autobatch.cfg ~member:b ~args in
        List.iter2
          (fun expect g ->
            if not (Tensor.equal expect g) then
              QCheck.Test.fail_reportf
                "CFG interpreter disagrees with AST interpreter on member %d\nprogram:\n%s"
                b (print_program prog))
          per_member got)
      expected;
    check_run "local/mask" (Autobatch.run_local compiled ~batch:batch_inputs);
    check_run "local/gather"
      (Autobatch.run_local
         ~config:{ Local_vm.default_config with style = Local_vm.Gather_scatter }
         compiled ~batch:batch_inputs);
    check_run "pc/earliest" (Autobatch.run_pc compiled ~batch:batch_inputs);
    check_run "pc/most-active"
      (Autobatch.run_pc
         ~config:{ Pc_vm.default_config with sched = Sched_policy.Most_active }
         compiled ~batch:batch_inputs);
    check_run "pc/round-robin"
      (Autobatch.run_pc
         ~config:{ Pc_vm.default_config with sched = Sched_policy.Round_robin }
         compiled ~batch:batch_inputs);
    true

let prop_differential =
  QCheck.Test.make ~name:"random programs: interpreter = local VM = pc VM"
    ~count:120 arb_program runs_agree


(* ---------- vector-valued fuzzing ----------

   A second generator covering tensor-shaped variables: two vector
   variables of dimension 3 flow through elementwise arithmetic,
   [select], functional [update]; scalars observe them through [index],
   [dot] and [sum]. Same differential check across all engines. *)

let vpool = [ "va"; "vb" ]

let rec gen_vexpr depth =
  let leaf =
    G.oneof
      [
        G.map Lang.var (G.oneofl vpool);
        G.map (fun l -> Lang.vec (Array.of_list l)) (G.list_size (G.return 3) gen_const);
      ]
  in
  if depth = 0 then leaf
  else
    G.frequency
      [
        (2, leaf);
        ( 2,
          let* name = G.oneofl [ "add"; "sub"; "mul"; "min"; "max" ] in
          let* a = gen_vexpr (depth - 1) in
          let* b = gen_vexpr (depth - 1) in
          G.return (Lang.prim name [ a; b ]) );
        ( 1,
          (* scalar broadcast against a vector *)
          let* s = gen_expr pool 1 in
          let* v = gen_vexpr (depth - 1) in
          G.return (Lang.prim "mul" [ s; v ]) );
        ( 1,
          let* v = gen_vexpr (depth - 1) in
          let* i = gen_sindex in
          let* x = gen_expr pool 1 in
          G.return (Lang.prim "update" [ v; i; x ]) );
        ( 1,
          let* c = gen_cmp pool 1 in
          let* a = gen_vexpr (depth - 1) in
          let* b = gen_vexpr (depth - 1) in
          G.return (Lang.prim "select" [ c; a; b ]) );
      ]

and gen_sindex =
  (* Indices stay in [0, 2]; out-of-range behaviour (clamping) is checked
     by direct unit tests, not by the differential (all engines clamp
     identically anyway). *)
  G.map (fun i -> Lang.flt (float_of_int i)) (G.int_bound 2)

let gen_vscalar =
  (* A scalar expression observing a vector. *)
  G.frequency
    [
      ( 2,
        let* v = gen_vexpr 1 in
        let* i = gen_sindex in
        G.return (Lang.prim "index" [ v; i ]) );
      ( 1,
        let* a = gen_vexpr 1 in
        let* b = gen_vexpr 1 in
        G.return (Lang.prim "dot" [ a; b ]) );
      ( 1,
        let* v = gen_vexpr 1 in
        G.return (Lang.prim "sum" [ v ]) );
    ]

let gen_vector_program =
  let* n_stmts = G.int_range 2 6 in
  let* body =
    G.list_size (G.return n_stmts)
      (G.frequency
         [
           ( 2,
             let* dst = G.oneofl vpool in
             let* e = gen_vexpr 2 in
             G.return (Lang.assign dst e) );
           ( 2,
             let* dst = G.oneofl pool in
             let* e = gen_vscalar in
             G.return (Lang.assign dst e) );
           ( 1,
             let* c = gen_cmp (pool @ []) 1 in
             let* dst = G.oneofl vpool in
             let* e1 = gen_vexpr 1 in
             let* e2 = gen_vexpr 1 in
             G.return (Lang.if_ c [ Lang.assign dst e1 ] [ Lang.assign dst e2 ]) );
         ])
  in
  let* r1 = gen_vscalar in
  let open Lang in
  G.return
    (program ~main:"main"
       [
         func "main" ~params:[ "p"; "q" ]
           ([
              assign "a" (var "p");
              assign "b" (var "q");
              assign "c" (prim "add" [ var "p"; var "q" ]);
              assign "d" (flt 1.);
              assign "va" (vec [| 1.; -2.; 0.5 |]);
              assign "vb" (prim "mul" [ var "q"; vec [| 2.; 0.; -1. |] ]);
            ]
           @ body
           @ [ return_ [ r1; prim "sum" [ var "va" ]; prim "sum" [ var "vb" ] ] ]);
       ])

let arb_vector_program = QCheck.make ~print:print_program gen_vector_program

let vector_runs_agree prog =
  let reg = Prim.standard () in
  match Validate.check_program reg prog with
  | Error msgs ->
    QCheck.Test.fail_reportf "invalid vector program: %s" (String.concat "; " msgs)
  | Ok () ->
    let compiled =
      Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar; Shape.scalar ]
        prog
    in
    let z = 5 in
    let expected =
      List.init z (fun b ->
          Autobatch.run_single compiled ~member:b
            ~args:(List.map (fun t -> Tensor.slice_row t b) batch_inputs))
    in
    let check label outputs =
      List.iteri
        (fun b per_member ->
          List.iteri
            (fun i expect ->
              let got = Tensor.slice_row (List.nth outputs i) b in
              if not (Tensor.equal expect got) then
                QCheck.Test.fail_reportf "%s member %d output %d:\n%s" label b i
                  (print_program prog))
            per_member)
        expected
    in
    check "local" (Autobatch.run_local compiled ~batch:batch_inputs);
    check "local-gather"
      (Autobatch.run_local
         ~config:{ Local_vm.default_config with style = Local_vm.Gather_scatter }
         compiled ~batch:batch_inputs);
    check "pc" (Autobatch.run_pc compiled ~batch:batch_inputs);
    check "jit" (Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch:batch_inputs);
    check "pc-optimized"
      (Autobatch.run_pc
         (Autobatch.compile ~registry:reg ~optimize:true
            ~input_shapes:[ Shape.scalar; Shape.scalar ] prog)
         ~batch:batch_inputs);
    true

let prop_vector_differential =
  QCheck.Test.make ~name:"vector programs: all engines agree" ~count:100
    arb_vector_program vector_runs_agree

(* Fusion differential: a compile with superblock fusion (DESIGN.md §S19)
   must stay bitwise equal to the reference interpreter on every engine —
   megablocks change scheduling, never values. The scalar generator's
   ifs, bounded loops and recursion exercise if-conversion, chain fusion,
   latch rotation and call-entry duplication. *)
let fused_runs_agree prog =
  let reg = Prim.standard () in
  match Validate.check_program reg prog with
  | Error msgs ->
    QCheck.Test.fail_reportf "generator produced invalid program: %s"
      (String.concat "; " msgs)
  | Ok () ->
    let input_shapes = [ Shape.scalar; Shape.scalar ] in
    let plain = Autobatch.compile ~registry:reg ~input_shapes prog in
    let fused =
      Autobatch.compile ~registry:reg ~fuse:Fuse.default_options ~input_shapes
        prog
    in
    let z = 5 in
    let expected =
      List.init z (fun b ->
          Autobatch.run_single plain ~member:b
            ~args:(List.map (fun t -> Tensor.slice_row t b) batch_inputs))
    in
    let check label outputs =
      List.iteri
        (fun b per_member ->
          List.iteri
            (fun i expect ->
              let got = Tensor.slice_row (List.nth outputs i) b in
              if not (Tensor.equal expect got) then
                QCheck.Test.fail_reportf
                  "%s disagrees with interpreter on member %d output %d:\n\
                   expected %s, got %s\nprogram:\n%s"
                  label b i (Tensor.to_string expect) (Tensor.to_string got)
                  (print_program prog))
            per_member)
        expected
    in
    check "fused pc" (Autobatch.run_pc fused ~batch:batch_inputs);
    check "fused local" (Autobatch.run_local fused ~batch:batch_inputs);
    (* A never-called function leaves its variables without inferred
       shapes and the JIT refuses to preallocate (fused or not); only
       require jit agreement when the unfused program jit-compiles. *)
    (match Autobatch.jit plain ~batch:z with
    | exception Invalid_argument _ -> ()
    | _ ->
      check "fused jit"
        (Pc_jit.run (Autobatch.jit fused ~batch:z) ~batch:batch_inputs));
    check "fused shard"
      (Autobatch.run_sharded
         ~config:{ Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
         fused ~batch:batch_inputs)
        .Shard_vm.outputs;
    true

let prop_fused_differential =
  QCheck.Test.make ~name:"random programs: fused compile stays bitwise"
    ~count:120 arb_program fused_runs_agree

let prop_fused_vector_differential =
  QCheck.Test.make ~name:"vector programs: fused compile stays bitwise"
    ~count:80 arb_vector_program fused_runs_agree

(* Migration differential (DESIGN.md §S20): every runtime under every
   scheduling policy — plus the defragmenting Sched_vm under no-migration
   and aggressive migration plans, and the server as width-1 requests —
   must agree bitwise with the Earliest program-counter baseline.
   Sched_sweep.bitwise_matrix is the same matrix the bench sched gate
   scores. *)
let migration_runs_agree prog =
  let reg = Prim.standard () in
  match Validate.check_program reg prog with
  | Error msgs ->
    QCheck.Test.fail_reportf "generator produced invalid program: %s"
      (String.concat "; " msgs)
  | Ok () ->
    let compiled =
      Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar; Shape.scalar ]
        prog
    in
    (* Same caveat as the fusion differential: a never-called function
       leaves shapes uninferred and the JIT refuses to preallocate. *)
    let include_jit =
      match Autobatch.jit compiled ~batch:5 with
      | exception Invalid_argument _ -> false
      | _ -> true
    in
    let checks =
      Sched_sweep.bitwise_matrix ~include_jit compiled ~batch:batch_inputs
    in
    (match Sched_sweep.failures checks with
    | [] -> true
    | bad ->
      QCheck.Test.fail_reportf "migration matrix bitwise failures: %s\nprogram:\n%s"
        (String.concat ", "
           (List.map
              (fun (c : Sched_sweep.check) ->
                Printf.sprintf "%s/%s/%s" c.Sched_sweep.c_runtime c.c_policy
                  c.c_plan)
              bad))
        (print_program prog))

let prop_migration_differential =
  QCheck.Test.make ~name:"random programs: migration matrix stays bitwise"
    ~count:40 arb_program migration_runs_agree

let prop_migration_vector_differential =
  QCheck.Test.make ~name:"vector programs: migration matrix stays bitwise"
    ~count:30 arb_vector_program migration_runs_agree

let suites =
  [
    ( "random-programs",
      [
        QCheck_alcotest.to_alcotest prop_differential;
        QCheck_alcotest.to_alcotest prop_vector_differential;
        QCheck_alcotest.to_alcotest prop_fused_differential;
        QCheck_alcotest.to_alcotest prop_fused_vector_differential;
        QCheck_alcotest.to_alcotest prop_migration_differential;
        QCheck_alcotest.to_alcotest prop_migration_vector_differential;
      ] );
  ]
