(* Tests for the resilience layer: the snapshot codec's round-trip and
   corruption guarantees, and the acceptance criterion of the recovery
   drivers — a faulted-and-recovered run is bitwise identical to the
   fault-free run, for every runtime and every serving policy. *)

let t = Alcotest.test_case

(* ---------- bitwise comparison helpers ---------- *)

(* IEEE-754 bit equality, not [=]: distinguishes -0. from 0. and compares
   NaNs by payload, which is exactly the replay guarantee. *)
let check_bits_tensors name expected actual =
  Alcotest.(check int) (name ^ " count") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check (array int)) (Printf.sprintf "%s[%d] shape" name i)
        (Tensor.shape e) (Tensor.shape a);
      Alcotest.(check (array int64)) (Printf.sprintf "%s[%d] bits" name i)
        (Array.map Int64.bits_of_float (Tensor.data e))
        (Array.map Int64.bits_of_float (Tensor.data a)))
    (List.combine expected actual)

let check_bits_float name e a =
  Alcotest.(check int64) name (Int64.bits_of_float e) (Int64.bits_of_float a)

(* ---------- fixtures ---------- *)

let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let fib_compiled =
  lazy (Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program)

let fib_batch z = [ Tensor.init [| z |] (fun i -> float_of_int (3 + (i.(0) mod 7))) ]

(* ---------- codec primitives ---------- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 256 in
  let nan_payload = Int64.float_of_bits 0x7ff0000000000123L in
  Codec.w_int buf 0;
  Codec.w_int buf (-1);
  Codec.w_int buf max_int;
  Codec.w_int buf min_int;
  Codec.w_float buf 1.5;
  Codec.w_float buf (-0.);
  Codec.w_float buf nan_payload;
  Codec.w_float buf infinity;
  Codec.w_bool buf true;
  Codec.w_bool buf false;
  Codec.w_string buf "";
  Codec.w_string buf "hello\x00world";
  Codec.w_int_array buf [| 3; -7; 0 |];
  Codec.w_float_array buf [| 0.1; -0.; nan_payload |];
  Codec.w_bool_array buf [| true; false; true |];
  Codec.w_list Codec.w_int buf [ 1; 2; 3 ];
  Codec.w_option Codec.w_float buf None;
  Codec.w_option Codec.w_float buf (Some 2.5);
  let r = Codec.reader (Buffer.contents buf) in
  Alcotest.(check int) "int 0" 0 (Codec.r_int r);
  Alcotest.(check int) "int -1" (-1) (Codec.r_int r);
  Alcotest.(check int) "max_int" max_int (Codec.r_int r);
  Alcotest.(check int) "min_int" min_int (Codec.r_int r);
  check_bits_float "float" 1.5 (Codec.r_float r);
  check_bits_float "neg zero" (-0.) (Codec.r_float r);
  check_bits_float "nan payload" nan_payload (Codec.r_float r);
  check_bits_float "infinity" infinity (Codec.r_float r);
  Alcotest.(check bool) "true" true (Codec.r_bool r);
  Alcotest.(check bool) "false" false (Codec.r_bool r);
  Alcotest.(check string) "empty string" "" (Codec.r_string r);
  Alcotest.(check string) "string with nul" "hello\x00world" (Codec.r_string r);
  Alcotest.(check (array int)) "int array" [| 3; -7; 0 |] (Codec.r_int_array r);
  Alcotest.(check (array int64)) "float array bits"
    (Array.map Int64.bits_of_float [| 0.1; -0.; nan_payload |])
    (Array.map Int64.bits_of_float (Codec.r_float_array r));
  Alcotest.(check (array bool)) "bool array" [| true; false; true |]
    (Codec.r_bool_array r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.r_list Codec.r_int r);
  Alcotest.(check (option (float 0.))) "none" None (Codec.r_option Codec.r_float r);
  Alcotest.(check (option (float 0.))) "some" (Some 2.5)
    (Codec.r_option Codec.r_float r);
  Alcotest.(check int) "fully consumed" 0 (Codec.remaining r)

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.failf "%s: accepted corrupt input" name
  | exception Codec.Corrupt _ -> ()

let test_codec_bounds () =
  expect_corrupt "short int" (fun () -> Codec.r_int (Codec.reader "short"));
  expect_corrupt "string past end" (fun () ->
      Codec.r_string (Codec.reader "\x20\x00\x00\x00\x00\x00\x00\x00"));
  (* A huge claimed array length must be rejected before allocation. *)
  let buf = Buffer.create 16 in
  Codec.w_int buf 1_000_000_000;
  expect_corrupt "giant array claim" (fun () ->
      Codec.r_float_array (Codec.reader (Buffer.contents buf)))

let test_fnv_basis () =
  Alcotest.(check int64) "fnv1a64 empty = offset basis" 0xcbf29ce484222325L
    (Codec.fnv1a64 "");
  Alcotest.(check bool) "fnv1a64 separates" true
    (not (Int64.equal (Codec.fnv1a64 "abc") (Codec.fnv1a64 "abd")))

(* ---------- envelope integrity ---------- *)

let sample_blob () =
  Snapshot.encode ~kind:"test-kind" (fun buf ->
      Codec.w_int buf 42;
      Codec.w_float_array buf [| 1.; 2.; 3. |])

let decode_sample blob =
  Snapshot.decode ~kind:"test-kind" blob (fun r ->
      let n = Codec.r_int r in
      let a = Codec.r_float_array r in
      (n, a))

let test_envelope_roundtrip () =
  let n, a = decode_sample (sample_blob ()) in
  Alcotest.(check int) "payload int" 42 n;
  Alcotest.(check (array (float 0.))) "payload array" [| 1.; 2.; 3. |] a

let test_envelope_rejects_corruption () =
  let blob = sample_blob () in
  (* Flipping any single byte anywhere in the envelope must be caught. *)
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      expect_corrupt
        (Printf.sprintf "flipped byte %d" i)
        (fun () -> decode_sample (Bytes.to_string b)))
    blob;
  (* Any truncation must be caught. *)
  for len = 0 to String.length blob - 1 do
    expect_corrupt
      (Printf.sprintf "truncated to %d" len)
      (fun () -> decode_sample (String.sub blob 0 len))
  done;
  (* Trailing garbage must be caught. *)
  expect_corrupt "trailing bytes" (fun () -> decode_sample (blob ^ "\x00"));
  (* A matching envelope with the wrong kind must be refused. *)
  expect_corrupt "wrong kind" (fun () ->
      Snapshot.decode ~kind:"other-kind" blob (fun _ -> ()));
  (* Payload bytes the reader leaves behind are an error, not slack. *)
  expect_corrupt "undecoded payload" (fun () ->
      Snapshot.decode ~kind:"test-kind" blob (fun r -> ignore (Codec.r_int r)))

let test_envelope_rejects_version () =
  let blob = sample_blob () in
  (* Patch the version field (8 bytes after the magic) and re-sign the
     envelope so only the version check can object. *)
  let body = String.sub blob 0 (String.length blob - 8) in
  let b = Bytes.of_string body in
  Bytes.set b 8 (Char.chr (Snapshot.version + 1));
  let body = Bytes.to_string b in
  let resigned =
    let buf = Buffer.create (String.length blob) in
    Buffer.add_string buf body;
    Codec.w_i64 buf (Codec.fnv1a64 body);
    Buffer.contents buf
  in
  expect_corrupt "future version" (fun () -> decode_sample resigned)

let test_file_roundtrip () =
  let blob = sample_blob () in
  let path = Filename.temp_file "abresil" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save_file path blob;
      Alcotest.(check string) "file round trip" blob (Snapshot.load_file path))

(* ---------- image round trips through the codec ---------- *)

let test_stacked_image_roundtrip () =
  let s = Stacked.create ~z:4 ~elem:[| 2 |] () in
  let mask = [| true; false; true; true |] in
  Stacked.push s ~mask;
  Stacked.write_top_masked s ~mask (Tensor.init [| 4; 2 |] (fun i -> float_of_int (i.(0) + i.(1))));
  Stacked.push s ~mask:[| true; false; false; false |];
  let img = Stacked.capture s in
  let buf = Buffer.create 128 in
  Snapshot.w_stacked buf img;
  let r = Codec.reader (Buffer.contents buf) in
  let img' = Snapshot.r_stacked r in
  Alcotest.(check int) "stacked fully consumed" 0 (Codec.remaining r);
  Alcotest.(check bool) "stacked image round trip" true (img = img')

let test_lanes_snapshot_roundtrip () =
  let compiled = Lazy.force fib_compiled in
  let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
  let z = 6 in
  let lanes = Pc_vm.Lanes.create reg stack ~z in
  let batch = fib_batch z in
  for lane = 0 to z - 1 do
    Pc_vm.Lanes.load lanes ~lane ~member:lane
      ~inputs:(List.map (fun b -> Tensor.slice_row b lane) batch)
  done;
  for _ = 1 to 5 do
    ignore (Pc_vm.Lanes.step lanes)
  done;
  let img = Pc_vm.Lanes.capture lanes in
  let blob =
    Snapshot.encode_pc { Snapshot.ck_vm = img; ck_engine = None; ck_instrument = None }
  in
  let ck = Snapshot.decode_pc blob in
  Alcotest.(check bool) "lanes image survives the wire" true
    (ck.Snapshot.ck_vm = img);
  (* Restore mid-flight state into a fresh pool and finish both runs:
     identical outputs, identical step counts. *)
  let lanes' = Pc_vm.Lanes.create reg stack ~z in
  Pc_vm.Lanes.restore lanes' ck.Snapshot.ck_vm;
  while Pc_vm.Lanes.step lanes do () done;
  while Pc_vm.Lanes.step lanes' do () done;
  Alcotest.(check int) "same supersteps" (Pc_vm.Lanes.steps lanes)
    (Pc_vm.Lanes.steps lanes');
  check_bits_tensors "resumed outputs" (Pc_vm.Lanes.outputs lanes)
    (Pc_vm.Lanes.outputs lanes')

let test_engine_snapshot_restores_cost () =
  let e = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.charge_kernel e ~name:"add" ~flops:1e6;
  Engine.charge_refill e ~bytes:4096.;
  let snap = Engine.snapshot e in
  let elapsed_then = Engine.elapsed e in
  Engine.charge_kernel e ~name:"mul" ~flops:5e7;
  Engine.charge_host_call e;
  Engine.restore e snap;
  check_bits_float "elapsed rewound exactly" elapsed_then (Engine.elapsed e);
  Alcotest.(check bool) "counters rewound" true
    ((Engine.snapshot e).Engine.at = snap.Engine.at);
  Alcotest.(check bool) "op tally rewound" true
    ((Engine.snapshot e).Engine.ops = snap.Engine.ops);
  (* The restored engine keeps charging from where the snapshot left off. *)
  Engine.charge_kernel e ~name:"mul" ~flops:5e7;
  Alcotest.(check bool) "cost is cumulative after restore" true
    (Engine.elapsed e > elapsed_then)

let test_instrument_image_roundtrip () =
  let compiled = Lazy.force fib_compiled in
  let ins = Instrument.create () in
  ignore
    (Autobatch.run_pc
       ~config:{ Pc_vm.default_config with Pc_vm.instrument = Some ins }
       compiled ~batch:(fib_batch 4));
  let img = Instrument.capture ins in
  let buf = Buffer.create 1024 in
  Snapshot.w_instrument buf img;
  let r = Codec.reader (Buffer.contents buf) in
  let img' = Snapshot.r_instrument r in
  Alcotest.(check int) "instrument fully consumed" 0 (Codec.remaining r);
  Alcotest.(check bool) "instrument image round trip" true (img = img');
  let ins' = Instrument.create () in
  Instrument.restore ins' img';
  Alcotest.(check bool) "restored instrument re-captures equal" true
    (Instrument.capture ins' = img)

(* ---------- deterministic recovery: the acceptance criterion ---------- *)

let fault_plan ~seed ~horizon ~kinds = Fault.schedule ~seed ~rate:0.1 ~horizon ~kinds ()

let test_recovery_pc_bitwise () =
  let compiled = Lazy.force fib_compiled in
  let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
  let batch = fib_batch 8 in
  let engine () = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let config e = { Pc_vm.default_config with Pc_vm.engine = Some e } in
  let e0 = engine () in
  let base, base_st = Recovery.run_pc ~config:(config e0) reg stack ~batch in
  Alcotest.(check int) "fault-free run wastes nothing" 0
    base_st.Recovery.wasted_supersteps;
  let horizon = base_st.Recovery.useful_supersteps in
  let kinds = [ Fault.Device_kill; Fault.Kernel_poison ] in
  List.iter
    (fun interval ->
      let e = engine () in
      let outs, st =
        Recovery.run_pc ~config:(config e) ~interval
          ~plan:(fault_plan ~seed:7 ~horizon ~kinds)
          reg stack ~batch
      in
      Alcotest.(check bool)
        (Printf.sprintf "interval %d: faults fired" interval)
        true
        (st.Recovery.faults_injected > 0 && st.Recovery.restores > 0);
      check_bits_tensors
        (Printf.sprintf "interval %d: outputs" interval)
        base outs;
      check_bits_float
        (Printf.sprintf "interval %d: engine clock" interval)
        (Engine.elapsed e0) (Engine.elapsed e);
      Alcotest.(check int)
        (Printf.sprintf "interval %d: useful supersteps" interval)
        base_st.Recovery.useful_supersteps st.Recovery.useful_supersteps)
    [ 1; 5; 0 ]

let test_recovery_pc_checkpoints_do_not_perturb () =
  let compiled = Lazy.force fib_compiled in
  let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
  let batch = fib_batch 8 in
  let base, _ = Recovery.run_pc reg stack ~batch in
  let outs, st = Recovery.run_pc ~interval:1 reg stack ~batch in
  Alcotest.(check bool) "one checkpoint per superstep" true
    (st.Recovery.checkpoints > st.Recovery.useful_supersteps);
  check_bits_tensors "capture is effect-free" base outs

let test_recovery_pc_instrument_identical () =
  let compiled = Lazy.force fib_compiled in
  let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
  let batch = fib_batch 8 in
  let run plan =
    let ins = Instrument.create () in
    let config = { Pc_vm.default_config with Pc_vm.instrument = Some ins } in
    let _, st = Recovery.run_pc ~config ~interval:4 ~plan reg stack ~batch in
    (Instrument.capture ins, st)
  in
  let base_img, base_st = run [] in
  let img, st =
    run
      (fault_plan ~seed:3
         ~horizon:base_st.Recovery.useful_supersteps
         ~kinds:[ Fault.Device_kill ])
  in
  Alcotest.(check bool) "faults fired" true (st.Recovery.restores > 0);
  Alcotest.(check bool) "instrument gauges bitwise identical" true (img = base_img)

let test_recovery_jit_bitwise () =
  let compiled = Lazy.force fib_compiled in
  let z = 8 in
  let batch = fib_batch z in
  let exe = Autobatch.jit compiled ~batch:z in
  let e0 = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let base, base_st = Recovery.run_jit ~engine:e0 exe ~batch in
  let horizon = base_st.Recovery.useful_supersteps + 1 in
  List.iter
    (fun interval ->
      let e = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      let outs, st =
        Recovery.run_jit ~engine:e ~interval
          ~plan:
            (fault_plan ~seed:11 ~horizon
               ~kinds:[ Fault.Device_kill; Fault.Kernel_poison ])
          exe ~batch
      in
      Alcotest.(check bool)
        (Printf.sprintf "interval %d: faults fired" interval)
        true (st.Recovery.restores > 0);
      check_bits_tensors (Printf.sprintf "interval %d: outputs" interval) base outs;
      check_bits_float
        (Printf.sprintf "interval %d: engine clock" interval)
        (Engine.elapsed e0) (Engine.elapsed e))
    [ 1; 6; 0 ]

let test_recovery_sharded_bitwise () =
  let compiled = Lazy.force fib_compiled in
  let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
  let batch = fib_batch 10 in
  (* Reference: the unsharded interpreter on the same batch. *)
  let base = Autobatch.run_pc compiled ~batch in
  let shards = 3 in
  let fault_free = Recovery.run_sharded ~shards reg stack ~batch in
  check_bits_tensors "sharding alone is bitwise neutral" base
    fault_free.Recovery.sh_outputs;
  List.iter
    (fun interval ->
      let r =
        Recovery.run_sharded ~shards ~interval
          ~plan:
            (Fault.schedule ~seed:5 ~rate:0.15
               ~horizon:(fault_free.Recovery.sh_rounds + 1)
               ~devices:shards
               ~kinds:[ Fault.Device_kill; Fault.Link_drop ]
               ())
          reg stack ~batch
      in
      Alcotest.(check bool)
        (Printf.sprintf "interval %d: faults fired" interval)
        true
        (r.Recovery.sh_stats.Recovery.faults_injected > 0);
      check_bits_tensors
        (Printf.sprintf "interval %d: sharded outputs" interval)
        base r.Recovery.sh_outputs)
    [ 1; 4; 0 ]

let server_digest (s : Server.stats) =
  let buf = Buffer.create 4096 in
  Codec.w_int buf s.Server.steps;
  Codec.w_int buf s.Server.idle_steps;
  Codec.w_float buf s.Server.makespan;
  List.iter
    (fun (r : Server.record) ->
      Codec.w_int buf r.Server.request.Request.id;
      Codec.w_float buf r.Server.queued;
      Codec.w_float buf r.Server.started;
      Codec.w_float buf r.Server.finished;
      List.iter
        (fun o ->
          Codec.w_int_array buf (Tensor.shape o);
          Codec.w_float_array buf (Tensor.data o))
        r.Server.outputs)
    s.Server.completions;
  List.iter (fun (r : Request.t) -> Codec.w_int buf r.Request.id) s.Server.shed;
  List.iter (fun (r : Request.t) -> Codec.w_int buf r.Request.id) s.Server.rejected;
  Codec.fnv1a64 (Buffer.contents buf)

let test_recovery_server_bitwise_all_policies () =
  let compiled = Lazy.force fib_compiled in
  let requests =
    List.init 10 (fun i ->
        Request.make ~id:i ~member:(i * 4)
          ~arrival:(float_of_int (i / 3) *. 2.)
          ~cost_hint:(float_of_int (3 + (i mod 7)))
          ~program:compiled
          ~inputs:[ Tensor.of_list [ float_of_int (3 + (i mod 7)) ] ]
          ())
  in
  List.iter
    (fun policy ->
      List.iter
        (fun shed ->
          let name =
            Printf.sprintf "%s/%s" (Server.policy_name policy)
              (match shed with
              | Request_queue.Reject_new -> "reject-new"
              | Request_queue.Drop_oldest -> "drop-oldest")
          in
          (* A tight queue forces the shedding path to actually run. *)
          let config =
            { Server.default_config with Server.lanes = 3; policy; queue_depth = 2; shed }
          in
          let base_stats, base_st =
            Recovery.run_server ~config ~program:compiled requests
          in
          let stats, st =
            Recovery.run_server ~config ~interval:3
              ~plan:
                (fault_plan ~seed:13
                   ~horizon:base_st.Recovery.useful_supersteps
                   ~kinds:[ Fault.Device_kill ])
              ~program:compiled requests
          in
          Alcotest.(check bool) (name ^ ": faults fired") true
            (st.Recovery.restores > 0);
          Alcotest.(check int64) (name ^ ": bitwise identical trace")
            (server_digest base_stats) (server_digest stats))
        [ Request_queue.Reject_new; Request_queue.Drop_oldest ])
    [ Server.Fifo; Server.Shortest_first; Server.Synchronous ]

(* ---------- property fuzzing ---------- *)

(* For random control-flow programs, random fault schedules, and random
   checkpoint intervals, recovery must reproduce the fault-free run
   bitwise on every runtime. Reuses the random-program generator of the
   differential suite. *)
let prop_recovery_bitwise =
  QCheck.Test.make ~name:"recovered runs are bitwise identical" ~count:40
    (QCheck.pair Test_random_programs.arb_program
       (QCheck.triple (QCheck.int_range 0 9) (QCheck.int_range 1 5)
          (QCheck.int_range 0 1000)))
    (fun (prog, (interval_choice, shards, seed)) ->
      (* interval 0..2 exercises restart-from-initial; larger values
         periodic checkpointing. *)
      let interval = if interval_choice < 3 then interval_choice else interval_choice - 2 in
      let compiled =
        Autobatch.compile ~input_shapes:[ Shape.scalar; Shape.scalar ] prog
      in
      let reg = compiled.Autobatch.registry and stack = compiled.Autobatch.stack in
      let batch = Test_random_programs.batch_inputs in
      let bits outs =
        List.map (fun t -> Array.map Int64.bits_of_float (Tensor.data t)) outs
      in
      let base, base_st = Recovery.run_pc reg stack ~batch in
      let horizon = base_st.Recovery.useful_supersteps + 1 in
      let plan =
        Fault.schedule ~seed ~rate:0.2 ~horizon ~devices:shards
          ~kinds:[ Fault.Device_kill; Fault.Link_drop ] ()
      in
      let pc_outs, _ = Recovery.run_pc ~interval ~plan reg stack ~batch in
      (* The jit refuses programs whose dead branches leave a variable's
         shape uninferred (the differential suite only jits the vector
         generator for the same reason) — recovery is vacuous there. *)
      let jit_ok =
        match Autobatch.jit compiled ~batch:(Tensor.shape (List.hd batch)).(0) with
        | exe ->
          let jit_outs, _ = Recovery.run_jit ~interval ~plan exe ~batch in
          bits jit_outs = bits base
        | exception Invalid_argument _ -> true
      in
      let shard_r = Recovery.run_sharded ~shards ~interval ~plan reg stack ~batch in
      bits pc_outs = bits base
      && jit_ok
      && bits shard_r.Recovery.sh_outputs = bits base)

let suites =
  [
    ( "resil-codec",
      [
        t "primitive round trips" `Quick test_codec_roundtrip;
        t "bounds checking" `Quick test_codec_bounds;
        t "fnv1a64 basis" `Quick test_fnv_basis;
      ] );
    ( "resil-envelope",
      [
        t "round trip" `Quick test_envelope_roundtrip;
        t "rejects corruption" `Quick test_envelope_rejects_corruption;
        t "rejects future versions" `Quick test_envelope_rejects_version;
        t "file round trip" `Quick test_file_roundtrip;
      ] );
    ( "resil-images",
      [
        t "stacked image" `Quick test_stacked_image_roundtrip;
        t "lanes snapshot resumes bitwise" `Quick test_lanes_snapshot_roundtrip;
        t "engine snapshot restores cost" `Quick test_engine_snapshot_restores_cost;
        t "instrument image" `Quick test_instrument_image_roundtrip;
      ] );
    ( "resil-recovery",
      [
        t "pc bitwise with engine" `Quick test_recovery_pc_bitwise;
        t "checkpoints are effect-free" `Quick test_recovery_pc_checkpoints_do_not_perturb;
        t "instrument identical after recovery" `Quick test_recovery_pc_instrument_identical;
        t "jit bitwise with engine" `Quick test_recovery_jit_bitwise;
        t "sharded bitwise, localized restore" `Quick test_recovery_sharded_bitwise;
        t "server bitwise under every policy" `Quick
          test_recovery_server_bitwise_all_policies;
      ] );
  ]

(* Registered behind the fast-tier gate in [Test_main], like the other
   random-program fuzzing. *)
let fuzz_suites =
  [ ("resil-fuzz", [ QCheck_alcotest.to_alcotest prop_recovery_bitwise ]) ]
