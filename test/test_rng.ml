(* Tests for the counter-based RNG and the sequential stream. *)

let t = Alcotest.test_case
let key = Counter_rng.key 42L

let test_determinism () =
  let a = Counter_rng.uniform key ~member:3 ~counter:17 ~slot:2 in
  let b = Counter_rng.uniform key ~member:3 ~counter:17 ~slot:2 in
  Alcotest.(check (float 0.)) "pure function of coordinates" a b;
  let c = Counter_rng.uniform (Counter_rng.key 43L) ~member:3 ~counter:17 ~slot:2 in
  Alcotest.(check bool) "seed changes stream" true (a <> c)

let test_coordinates_independent () =
  let base = Counter_rng.uniform key ~member:0 ~counter:0 ~slot:0 in
  Alcotest.(check bool) "member varies" true
    (base <> Counter_rng.uniform key ~member:1 ~counter:0 ~slot:0);
  Alcotest.(check bool) "counter varies" true
    (base <> Counter_rng.uniform key ~member:0 ~counter:1 ~slot:0);
  Alcotest.(check bool) "slot varies" true
    (base <> Counter_rng.uniform key ~member:0 ~counter:0 ~slot:1)

let test_uniform_range_and_moments () =
  let n = 20_000 in
  let acc = ref 0. and acc2 = ref 0. in
  for i = 0 to n - 1 do
    let u = Counter_rng.uniform key ~member:0 ~counter:i ~slot:0 in
    Alcotest.(check bool) "in (0,1)" true (u > 0. && u < 1.);
    acc := !acc +. u;
    acc2 := !acc2 +. (u *. u)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 1/2" true (Float.abs (mean -. 0.5) < 0.01);
  Alcotest.(check bool) "var ~ 1/12" true (Float.abs (var -. (1. /. 12.)) < 0.01)

let test_normal_moments () =
  let n = 20_000 in
  let acc = ref 0. and acc2 = ref 0. and acc3 = ref 0. in
  for i = 0 to n - 1 do
    let x = Counter_rng.normal key ~member:1 ~counter:i ~slot:0 in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x);
    acc3 := !acc3 +. (x *. x *. x)
  done;
  let nf = float_of_int n in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs (!acc /. nf) < 0.03);
  Alcotest.(check bool) "var ~ 1" true (Float.abs ((!acc2 /. nf) -. 1.) < 0.05);
  Alcotest.(check bool) "skew ~ 0" true (Float.abs (!acc3 /. nf) < 0.1)

let test_exponential_moments () =
  let n = 20_000 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let x = Counter_rng.exponential key ~member:2 ~counter:i ~slot:0 in
    Alcotest.(check bool) "positive" true (x > 0.);
    acc := !acc +. x
  done;
  Alcotest.(check bool) "mean ~ 1" true (Float.abs ((!acc /. float_of_int n) -. 1.) < 0.03)

let test_bernoulli () =
  let n = 10_000 in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if Counter_rng.bernoulli key ~p:0.3 ~member:0 ~counter:i ~slot:0 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p ~ 0.3" true (Float.abs (p -. 0.3) < 0.02)

let test_batched_match_single () =
  let counters = Tensor.of_list [ 0.; 5.; 2. ] in
  let u = Counter_rng.uniform_batch key ~counters in
  for b = 0 to 2 do
    Alcotest.(check (float 0.)) "uniform batch = single"
      (Counter_rng.uniform key ~member:b
         ~counter:(int_of_float (Tensor.data counters).(b))
         ~slot:0)
      (Tensor.data u).(b)
  done;
  let nt = Counter_rng.normal_batch key ~counters ~dim:4 in
  Alcotest.(check (array int)) "normal batch shape" [| 3; 4 |] (Tensor.shape nt);
  for b = 0 to 2 do
    for j = 0 to 3 do
      Alcotest.(check (float 0.)) "normal batch = single"
        (Counter_rng.normal key ~member:b
           ~counter:(int_of_float (Tensor.data counters).(b))
           ~slot:j)
        (Tensor.get nt [| b; j |])
    done
  done;
  let e = Counter_rng.exponential_batch key ~counters in
  Alcotest.(check (float 0.)) "exponential batch = single"
    (Counter_rng.exponential key ~member:1 ~counter:5 ~slot:0)
    (Tensor.data e).(1)

let test_stream () =
  let s1 = Splitmix.Stream.create 1L in
  let s2 = Splitmix.Stream.create 1L in
  Alcotest.(check (float 0.)) "streams deterministic" (Splitmix.Stream.uniform s1)
    (Splitmix.Stream.uniform s2);
  for _ = 1 to 1000 do
    let k = Splitmix.Stream.int_below s1 7 in
    Alcotest.(check bool) "int_below in range" true (k >= 0 && k < 7)
  done;
  Alcotest.check_raises "int_below 0"
    (Invalid_argument "Splitmix.Stream.int_below: non-positive bound") (fun () ->
      ignore (Splitmix.Stream.int_below s1 0))

let test_stream_state_roundtrip () =
  (* state/of_state is the snapshot seam: a stream rebuilt from its state
     word draws the exact same tail, and capturing is effect-free. *)
  let s = Splitmix.Stream.create 0xFEEDFACEL in
  for _ = 1 to 17 do
    ignore (Splitmix.Stream.uniform s)
  done;
  let st = Splitmix.Stream.state s in
  let s' = Splitmix.Stream.of_state st in
  Alcotest.(check int64) "state survives the round trip" st
    (Splitmix.Stream.state s');
  for i = 1 to 50 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d identical" i)
      (Splitmix.Stream.next_int64 s)
      (Splitmix.Stream.next_int64 s')
  done

let test_mix64_bijective_sample () =
  (* Distinct inputs map to distinct outputs (spot check, mix64 is a
     permutation). *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 1023 do
    let w = Splitmix.mix64 (Int64.of_int i) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen w);
    Hashtbl.add seen w ()
  done

let prop_unit_float_open =
  QCheck.Test.make ~name:"to_unit_float in (0,1)" ~count:500 QCheck.int64 (fun w ->
      let f = Splitmix.to_unit_float w in
      f > 0. && f < 1.)

let suites =
  [
    ( "rng",
      [
        t "determinism" `Quick test_determinism;
        t "coordinate independence" `Quick test_coordinates_independent;
        t "uniform range and moments" `Quick test_uniform_range_and_moments;
        t "normal moments" `Quick test_normal_moments;
        t "exponential moments" `Quick test_exponential_moments;
        t "bernoulli" `Quick test_bernoulli;
        t "batched draws match single" `Quick test_batched_match_single;
        t "sequential stream" `Quick test_stream;
        t "stream state round trip" `Quick test_stream_state_roundtrip;
        t "mix64 no collisions" `Quick test_mix64_bijective_sample;
        QCheck_alcotest.to_alcotest prop_unit_float_open;
      ] );
  ]
