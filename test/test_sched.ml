(* lib/sched — the scheduling subsystem: policy picks and tie-breaking,
   static cost/depth tables, the pure defragmentation planner, the lane
   migration seam (Pc_vm.Lanes export/evict/import), and migration
   determinism: every runtime stays bitwise identical to the Earliest
   program-counter baseline under every policy and migration schedule. *)

let scalar_batch a = Tensor.init [| Array.length a |] (fun i -> a.(i.(0)))

let fib_compiled =
  Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.fib

let fib_batch = [ scalar_batch [| 4.; 7.; 5.; 9.; 6.; 8. |] ]

let walk_compiled =
  Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.random_walk

let walk_batch = [ scalar_batch [| 3.; 6.; 1.; 8.; 4.; 2. |] ]

(* ---------- Sched_policy ---------- *)

let test_policy_strings () =
  Alcotest.(check int) "three legacy heuristics" 3 (List.length Sched_policy.legacy);
  Alcotest.(check int) "five policies" 5 (List.length Sched_policy.all);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("round-trip " ^ Sched_policy.to_string p)
        true
        (Sched_policy.of_string (Sched_policy.to_string p) = Some p))
    Sched_policy.all;
  Alcotest.(check bool) "cost alias" true
    (Sched_policy.of_string "cost" = Some Sched_policy.Cost_lookahead);
  Alcotest.(check bool) "critical alias" true
    (Sched_policy.of_string "critical" = Some Sched_policy.Critical_path);
  Alcotest.(check bool) "unknown" true (Sched_policy.of_string "zippy" = None);
  Alcotest.check_raises "of_string_exn raises"
    (Invalid_argument
       "Sched_policy.of_string_exn: unknown policy \"zippy\" \
        (earliest|most-active|round-robin|cost-lookahead|critical-path)")
    (fun () -> ignore (Sched_policy.of_string_exn "zippy"))

let test_policy_picks () =
  let counts = [| 0; 2; 3; 3; 1 |] in
  let tables =
    {
      Sched_policy.cost = [| 1.; 10.; 1.; 2.; 100. |];
      depth = [| 0.; 1.; 5.; 5.; 9. |];
    }
  in
  let pick ?tables p = Sched_policy.pick ?tables p ~last:(-1) ~counts in
  Alcotest.(check (option int)) "earliest -> lowest runnable" (Some 1)
    (pick Sched_policy.Earliest);
  Alcotest.(check (option int)) "most-active ties to lowest" (Some 2)
    (pick Sched_policy.Most_active);
  (* counts.(i) * cost.(i): 20, 3, 6, 100 -> block 4. *)
  Alcotest.(check (option int)) "cost-lookahead maximizes count*cost" (Some 4)
    (pick ~tables Sched_policy.Cost_lookahead);
  (* Longest remaining road among runnable blocks: depths 1, 5, 5, 9. *)
  Alcotest.(check (option int)) "critical-path maximizes depth" (Some 4)
    (pick ~tables Sched_policy.Critical_path);
  (* Depth ties break toward the lowest block index. *)
  Alcotest.(check (option int)) "critical-path tie to lowest" (Some 2)
    (Sched_policy.pick
       ~tables:
         { Sched_policy.cost = [| 1.; 1.; 1.; 1.; 1. |];
           depth = [| 9.; 0.; 5.; 5.; 1. |] }
       Sched_policy.Critical_path ~last:(-1) ~counts);
  (* Without tables the table-driven policies degrade as documented. *)
  Alcotest.(check (option int)) "no tables: cost-lookahead = most-active"
    (pick Sched_policy.Most_active)
    (pick Sched_policy.Cost_lookahead);
  Alcotest.(check (option int)) "no tables: critical-path = earliest"
    (pick Sched_policy.Earliest)
    (pick Sched_policy.Critical_path);
  (* All-idle pools pick nothing, under every policy. *)
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        ("all-zero " ^ Sched_policy.to_string p)
        None
        (Sched_policy.pick ~tables p ~last:(-1) ~counts:[| 0; 0; 0; 0; 0 |]))
    Sched_policy.all;
  Alcotest.(check bool) "needs_tables" true
    (Sched_policy.needs_tables Sched_policy.Cost_lookahead
    && Sched_policy.needs_tables Sched_policy.Critical_path
    && not (List.exists Sched_policy.needs_tables Sched_policy.legacy))

let test_cost_tables () =
  let stack = fib_compiled.Autobatch.stack in
  let tables =
    Sched_cost.stack_tables ~registry:fib_compiled.Autobatch.registry stack
  in
  let n = Array.length stack.Stack_ir.blocks in
  Alcotest.(check int) "costs cover every block" n
    (Array.length tables.Sched_policy.cost);
  Alcotest.(check int) "depths cover every block" n
    (Array.length tables.Sched_policy.depth);
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d launch charge" i)
        true (c >= 1.);
      (* depth = own cost + longest forward path, so never below cost. *)
      Alcotest.(check bool)
        (Printf.sprintf "block %d depth >= cost" i)
        true
        (tables.Sched_policy.depth.(i) >= c))
    tables.Sched_policy.cost;
  (* Mismatched tables are rejected rather than silently truncated. *)
  Alcotest.(check bool) "short tables rejected" true
    (match
       Sched_policy.pick
         ~tables:{ Sched_policy.cost = [| 1. |]; depth = [| 1. |] }
         Sched_policy.Cost_lookahead ~last:(-1)
         ~counts:(Array.make n 1)
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "func_tables unknown fn" true
    (match Sched_cost.func_costs fib_compiled.Autobatch.cfg ~fn:"nope" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Sched_plan ---------- *)

let test_choose_lanes () =
  let free = [| false; true; true; false; true |] in
  Alcotest.(check bool) "lowest free lanes" true
    (Sched_plan.choose_lanes ~free ~width:2 = Some [| 1; 2 |]);
  Alcotest.(check bool) "all free lanes" true
    (Sched_plan.choose_lanes ~free ~width:3 = Some [| 1; 2; 4 |]);
  Alcotest.(check bool) "too wide" true
    (Sched_plan.choose_lanes ~free ~width:4 = None)

let test_plan_refills () =
  let views =
    [|
      { Sched_plan.free = [ 0; 2 ]; live = [ 1 ] };
      { Sched_plan.free = [ 1 ]; live = [ 0 ] };
    |]
  in
  let plan = Sched_plan.plan Sched_plan.no_migration ~pending:2 ~views in
  Alcotest.(check bool) "(shard, lane) order" true
    (plan.Sched_plan.refills
    = [
        { Sched_plan.r_shard = 0; r_lane = 0 };
        { Sched_plan.r_shard = 0; r_lane = 2 };
      ]);
  Alcotest.(check bool) "no moves without migration" true
    (plan.Sched_plan.moves = []);
  let full = Sched_plan.plan Sched_plan.no_migration ~pending:9 ~views in
  Alcotest.(check int) "refills bounded by free lanes" 3
    (List.length full.Sched_plan.refills);
  let off = Sched_plan.plan Sched_plan.off ~pending:9 ~views in
  Alcotest.(check bool) "off plans nothing" true
    (off.Sched_plan.refills = [] && off.Sched_plan.moves = [])

let test_plan_steals () =
  let views () =
    [|
      { Sched_plan.free = []; live = [ 0; 1; 2; 3 ] };
      { Sched_plan.free = [ 0; 1; 2; 3 ]; live = [] };
    |]
  in
  (* Default: one steal per round, donor's highest live lane into the
     recipient's lowest free lane. *)
  let plan = Sched_plan.plan Sched_plan.default ~pending:0 ~views:(views ()) in
  Alcotest.(check bool) "one capped steal" true
    (plan.Sched_plan.moves
    = [
        { Sched_plan.m_src_shard = 0; m_src_lane = 3; m_dst_shard = 1; m_dst_lane = 0 };
      ]);
  (* Aggressive: steal until the imbalance drops below the margin
     (4-0 -> 3-1 -> 2-2, stop). *)
  let plan = Sched_plan.plan Sched_plan.aggressive ~pending:0 ~views:(views ()) in
  Alcotest.(check bool) "steals until balanced" true
    (plan.Sched_plan.moves
    = [
        { Sched_plan.m_src_shard = 0; m_src_lane = 3; m_dst_shard = 1; m_dst_lane = 0 };
        { Sched_plan.m_src_shard = 0; m_src_lane = 2; m_dst_shard = 1; m_dst_lane = 1 };
      ])

let test_plan_compaction () =
  (* One shard, fragmented: live members slide down into the lowest free
     lanes (3 -> 0), and a move that would not lower the member's lane
     index (1 -> 2) is not emitted. *)
  let views = [| { Sched_plan.free = [ 0; 2 ]; live = [ 1; 3 ] } |] in
  let plan = Sched_plan.plan Sched_plan.default ~pending:0 ~views in
  Alcotest.(check bool) "slides top live lane down" true
    (plan.Sched_plan.moves
    = [
        { Sched_plan.m_src_shard = 0; m_src_lane = 3; m_dst_shard = 0; m_dst_lane = 0 };
      ]);
  let no_compact =
    Sched_plan.plan { Sched_plan.default with compact = false } ~pending:0 ~views
  in
  Alcotest.(check bool) "compaction can be disabled" true
    (no_compact.Sched_plan.moves = [])

let test_plan_deterministic () =
  let views () =
    [|
      { Sched_plan.free = [ 2; 5 ]; live = [ 0; 1; 3; 4 ] };
      { Sched_plan.free = [ 0; 1; 2; 4 ]; live = [ 3; 5 ] };
      { Sched_plan.free = [ 1 ]; live = [ 0; 2 ] };
    |]
  in
  let a = Sched_plan.plan Sched_plan.aggressive ~pending:3 ~views:(views ()) in
  let b = Sched_plan.plan Sched_plan.aggressive ~pending:3 ~views:(views ()) in
  Alcotest.(check bool) "plans are a pure function of the view" true (a = b);
  (* The plan is valid applied in order: every refill targets a lane
     that is free at that point, and every move reads a live source and
     lands in a free destination at that point. (A lane may be targeted
     twice — e.g. refilled, stolen away, then refilled by compaction —
     so global distinctness is NOT the invariant.) *)
  let occupied = Hashtbl.create 16 in
  Array.iteri
    (fun s v -> List.iter (fun l -> Hashtbl.replace occupied (s, l) ()) v.Sched_plan.live)
    (views ());
  List.iter
    (fun r ->
      let key = (r.Sched_plan.r_shard, r.Sched_plan.r_lane) in
      Alcotest.(check bool) "refill targets a free lane" false
        (Hashtbl.mem occupied key);
      Hashtbl.replace occupied key ())
    a.Sched_plan.refills;
  List.iter
    (fun m ->
      let src = (m.Sched_plan.m_src_shard, m.Sched_plan.m_src_lane) in
      let dst = (m.Sched_plan.m_dst_shard, m.Sched_plan.m_dst_lane) in
      Alcotest.(check bool) "move reads a live source" true
        (Hashtbl.mem occupied src);
      Alcotest.(check bool) "move lands in a free lane" false
        (Hashtbl.mem occupied dst);
      Hashtbl.remove occupied src;
      Hashtbl.replace occupied dst ())
    a.Sched_plan.moves;
  (* This view set exercises the re-target case: steals drain a refilled
     lane and compaction refills it, so there are more targets than
     distinct lanes. *)
  Alcotest.(check bool) "steals and compaction both fired" true
    (List.length a.Sched_plan.moves >= 3)

(* ---------- the lane migration seam ---------- *)

(* Drain a pool that got its members preloaded, migrating by [migrate]
   every few steps, and return the per-member outputs. *)
let drain_pool ?(migrate_every = 3) ?(migrate = fun _ _ -> ()) pool ~n =
  let z = Pc_vm.Lanes.z pool in
  let outputs = Array.make n [] in
  let retire_finished () =
    List.iter
      (fun lane ->
        let m = Pc_vm.Lanes.member pool ~lane in
        outputs.(m) <- Pc_vm.Lanes.retire pool ~lane)
      (Pc_vm.Lanes.finished_lanes pool)
  in
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    retire_finished ();
    if !steps mod migrate_every = 0 then begin
      let lanes = List.init z Fun.id in
      let live = List.filter (fun l -> Pc_vm.Lanes.live pool ~lane:l) lanes in
      let free =
        List.filter (fun l -> not (Pc_vm.Lanes.occupied pool ~lane:l)) lanes
      in
      migrate live free
    end;
    incr steps;
    if not (Pc_vm.Lanes.step pool) then continue_ := false
  done;
  retire_finished ();
  outputs

let check_members label baseline outputs =
  Array.iteri
    (fun m outs ->
      Alcotest.(check int)
        (Printf.sprintf "%s: member %d retired" label m)
        (List.length baseline) (List.length outs);
      List.iteri
        (fun j t ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: member %d output %d bitwise" label m j)
            true
            (Tensor.equal t (Tensor.slice_row (List.nth baseline j) m)))
        outs)
    outputs

let preloaded compiled batch ~z =
  let pool =
    Pc_vm.Lanes.create compiled.Autobatch.registry compiled.Autobatch.stack ~z
  in
  let n = (Tensor.shape (List.hd batch)).(0) in
  for m = 0 to n - 1 do
    Pc_vm.Lanes.load pool ~lane:m ~member:m
      ~inputs:(List.map (fun t -> Tensor.slice_row t m) batch)
  done;
  (pool, n)

let test_migration_in_pool () =
  (* fib (stacked recursion state) and random_walk (counter-keyed RNG
     draws): sliding the top live lane into the lowest free lane every
     few steps must leave every member's outputs bitwise intact. The
     pool has two spare lanes so a migration target exists even when no
     member has retired yet (random_walk members all finish on the same
     superstep, so mid-run retirement never frees a lane there). *)
  List.iter
    (fun (label, compiled, batch) ->
      let baseline = Autobatch.run_pc compiled ~batch in
      let pool, n = preloaded compiled batch ~z:((Tensor.shape (List.hd batch)).(0) + 2) in
      let moved = ref 0 in
      let outputs =
        drain_pool pool ~n ~migrate:(fun live free ->
            match (List.rev live, free) with
            | src :: _, dst :: _ ->
              ignore (Pc_vm.Lanes.migrate pool ~src ~dst);
              incr moved
            | _ -> ())
      in
      Alcotest.(check bool) (label ^ ": migrations happened") true (!moved > 0);
      check_members label baseline outputs)
    [
      ("fib", fib_compiled, fib_batch);
      ("random_walk", walk_compiled, walk_batch);
    ]

let test_migration_across_pools () =
  (* Export a live lane mid-run, evict it, and import it into a fresh
     pool at a different lane index: the member's trajectory continues
     bitwise-exactly (the RNG keys on the member identity carried in the
     state, never on the lane index or the pool). *)
  let compiled, batch = (walk_compiled, walk_batch) in
  let baseline = Autobatch.run_pc compiled ~batch in
  let n = (Tensor.shape (List.hd batch)).(0) in
  let pool_a, _ = preloaded compiled batch ~z:n in
  let pool_b =
    Pc_vm.Lanes.create compiled.Autobatch.registry compiled.Autobatch.stack ~z:4
  in
  (* Run A a few steps, then deport its highest live lane into B. *)
  for _ = 1 to 5 do
    ignore (Pc_vm.Lanes.step pool_a)
  done;
  let src =
    match
      List.rev
        (List.filter
           (fun l -> Pc_vm.Lanes.live pool_a ~lane:l)
           (List.init n Fun.id))
    with
    | src :: _ -> src
    | [] -> Alcotest.fail "walk drained in five steps"
  in
  let state = Pc_vm.Lanes.export_lane pool_a ~lane:src in
  let bytes = Pc_vm.Lanes.lane_state_bytes state in
  Alcotest.(check bool) "migration payload is priced" true (bytes > 0.);
  Pc_vm.Lanes.evict pool_a ~lane:src;
  Pc_vm.Lanes.import_lane pool_b ~lane:1 state;
  Alcotest.(check int) "member identity travels with the state"
    state.Pc_vm.Lanes.ls_member
    (Pc_vm.Lanes.member pool_b ~lane:1);
  let out_a = drain_pool pool_a ~n in
  let out_b = drain_pool pool_b ~n in
  (* Each member finished in exactly one of the two pools. *)
  let outputs =
    Array.init n (fun m -> if out_a.(m) = [] then out_b.(m) else out_a.(m))
  in
  check_members "cross-pool" baseline outputs

(* Seeded-schedule fuzzer: a deterministic RNG drives arbitrary legal
   migrations (any live lane into any free lane, at random step counts)
   and the per-member outputs must stay bitwise equal to the plain
   program-counter run — under a random scheduling policy, too. *)
let prop_migration_fuzz =
  QCheck.Test.make ~name:"seeded migration schedules stay bitwise" ~count:40
    (QCheck.triple QCheck.small_nat
       (QCheck.oneofl Sched_policy.all)
       (QCheck.oneofl [ `Fib; `Walk ]))
    (fun (seed, sched, which) ->
      let compiled, batch =
        match which with
        | `Fib -> (fib_compiled, fib_batch)
        | `Walk -> (walk_compiled, walk_batch)
      in
      let baseline =
        Autobatch.run_pc
          ~config:{ Pc_vm.default_config with sched }
          compiled ~batch
      in
      let n = (Tensor.shape (List.hd batch)).(0) in
      let z = n + 3 in
      let pool =
        Pc_vm.Lanes.create
          ~config:{ Pc_vm.default_config with sched }
          compiled.Autobatch.registry compiled.Autobatch.stack ~z
      in
      for m = 0 to n - 1 do
        Pc_vm.Lanes.load pool ~lane:m ~member:m
          ~inputs:(List.map (fun t -> Tensor.slice_row t m) batch)
      done;
      let rng = Random.State.make [| seed; 0xA1 |] in
      let outputs =
        drain_pool pool ~n ~migrate_every:1 ~migrate:(fun live free ->
            if live <> [] && free <> [] && Random.State.bool rng then begin
              let pick l = List.nth l (Random.State.int rng (List.length l)) in
              ignore (Pc_vm.Lanes.migrate pool ~src:(pick live) ~dst:(pick free))
            end)
      in
      Array.iteri
        (fun m outs ->
          List.iteri
            (fun j t ->
              if not (Tensor.equal t (Tensor.slice_row (List.nth baseline j) m))
              then
                QCheck.Test.fail_reportf
                  "member %d output %d diverged under seed %d / %s" m j seed
                  (Sched_policy.to_string sched))
            outs)
        outputs;
      true)

(* ---------- migration differentials (Sched_sweep.bitwise_matrix) ---------- *)

let expect_all_bitwise label checks =
  Alcotest.(check int)
    (label ^ ": policies x runtimes x plans covered")
    (List.length Sched_policy.all * 7)
    (List.length checks);
  match Sched_sweep.failures checks with
  | [] -> ()
  | bad ->
    let c = List.hd bad in
    Alcotest.failf "%s: %d checks not bitwise (first: %s under %s, plan %s)"
      label (List.length bad) c.Sched_sweep.c_runtime c.Sched_sweep.c_policy
      c.Sched_sweep.c_plan

let test_matrix_fib () =
  expect_all_bitwise "fib" (Sched_sweep.bitwise_matrix fib_compiled ~batch:fib_batch)

let test_matrix_walk () =
  expect_all_bitwise "random_walk"
    (Sched_sweep.bitwise_matrix walk_compiled ~batch:walk_batch)

let test_matrix_vector () =
  let compiled =
    Autobatch.compile ~input_shapes:[ [| 4 |]; Shape.scalar ]
      Test_programs.vec_double
  in
  let batch =
    [
      Tensor.init [| 5; 4 |] (fun i -> float_of_int ((i.(0) * 4) + i.(1) + 1));
      scalar_batch [| 0.; 3.; 5.; 1.; 2. |];
    ]
  in
  expect_all_bitwise "vec_double" (Sched_sweep.bitwise_matrix compiled ~batch)

(* ---------- Sched_vm ---------- *)

let test_sched_vm_rejects () =
  let run config =
    Sched_vm.run ~config fib_compiled.Autobatch.registry
      fib_compiled.Autobatch.stack ~batch:fib_batch
  in
  Alcotest.(check bool) "zero lanes rejected" true
    (match run { Sched_vm.default_config with lanes = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "no-refill plan rejected" true
    (match run { Sched_vm.default_config with plan = Sched_plan.off } with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sched_vm_accounting () =
  let config =
    {
      Sched_vm.default_config with
      lanes = 2;
      mesh = Mesh.gpu_pod ~n:2 ();
      plan = Sched_plan.aggressive;
    }
  in
  let r =
    Sched_vm.run ~config walk_compiled.Autobatch.registry
      walk_compiled.Autobatch.stack ~batch:walk_batch
  in
  let baseline = Autobatch.run_pc walk_compiled ~batch:walk_batch in
  List.iteri
    (fun j t ->
      Alcotest.(check bool)
        (Printf.sprintf "output %d bitwise" j)
        true
        (Tensor.equal t (List.nth baseline j)))
    r.Sched_vm.outputs;
  (* Capacity (2 shards x 2 lanes) is below the batch (6): lanes must
     recycle, so there are more refills than the initial fill. *)
  Alcotest.(check bool) "lanes recycled" true (r.Sched_vm.refills > 4);
  Alcotest.(check bool) "supersteps counted" true (r.Sched_vm.supersteps > 0);
  Alcotest.(check bool) "steals within migrations" true
    (r.Sched_vm.steals <= r.Sched_vm.migrations);
  Alcotest.(check bool) "migrations are priced" true
    (r.Sched_vm.migrations = 0 || r.Sched_vm.migration_bytes > 0.);
  Alcotest.(check bool) "clock advanced" true (r.Sched_vm.sim_time > 0.)

let suites =
  [
    ( "sched-policy",
      [
        ("policy strings", `Quick, test_policy_strings);
        ("policy picks", `Quick, test_policy_picks);
        ("cost tables", `Quick, test_cost_tables);
      ] );
    ( "sched-plan",
      [
        ("choose_lanes", `Quick, test_choose_lanes);
        ("refills", `Quick, test_plan_refills);
        ("steals", `Quick, test_plan_steals);
        ("compaction", `Quick, test_plan_compaction);
        ("deterministic", `Quick, test_plan_deterministic);
      ] );
    ( "sched-migration",
      [
        ("in-pool migration bitwise", `Quick, test_migration_in_pool);
        ("cross-pool migration bitwise", `Quick, test_migration_across_pools);
        ("bitwise matrix: fib", `Quick, test_matrix_fib);
        ("bitwise matrix: random_walk", `Quick, test_matrix_walk);
        ("bitwise matrix: vec_double", `Quick, test_matrix_vector);
        QCheck_alcotest.to_alcotest prop_migration_fuzz;
      ] );
    ( "sched-vm",
      [
        ("invalid configs rejected", `Quick, test_sched_vm_rejects);
        ("defrag run accounting", `Quick, test_sched_vm_accounting);
      ] );
  ]
