(* Tests for the continuous-batching serving subsystem: the recyclable
   lane pool, the bounded admission queue, and the server's acceptance
   criterion — every request's outputs are bitwise identical to running
   it alone, regardless of arrival order, batch composition, or
   admission policy. *)

let t = Alcotest.test_case
let check_f = Alcotest.(check (float 1e-12))

(* ---------- fixtures ---------- *)

(* A cheap control-flow program whose running time depends on its input:
   fib by double recursion, so service times genuinely differ per lane. *)
let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let fib_compiled =
  lazy (Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program)

let fib_request ?(arrival = 0.) ?width ~id n =
  let compiled = Lazy.force fib_compiled in
  let inputs =
    match width with
    | None -> [ Tensor.of_list [ n ] ]
    | Some w -> [ Tensor.init [| w |] (fun i -> n +. float_of_int i.(0)) ]
  in
  Request.make ~id ~member:(id * 16) ~arrival ~cost_hint:n ~program:compiled
    ~inputs ()

(* The stochastic fixture: batched NUTS on a small Gaussian, where every
   lane draws from its member's RNG streams — the serving layer must
   reproduce those draws exactly through member offsetting. *)
let nuts_fixture =
  lazy
    (let dim = 5 in
     let model = Gaussian_model.model ~dim () in
     let reg, _ = Nuts_dsl.setup ~seed:0xD15EA5EL ~model () in
     let q0 = Tensor.zeros [| dim |] in
     let eps = Nuts.find_reasonable_eps ~seed:0xD15EA5EL ~model ~q0 () in
     let cfg = Nuts.default_config ~eps () in
     let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
     let compiled =
       Autobatch.compile ~registry:reg
         ~input_shapes:(Nuts_dsl.input_shapes ~model)
         prog
     in
     (compiled, q0, eps))

let nuts_request ?(arrival = 0.) ?(width = 1) ?(n_iter = 1) ~id ~member () =
  let compiled, q0, eps = Lazy.force nuts_fixture in
  Request.make ~id ~member ~arrival
    ~cost_hint:(float_of_int n_iter)
    ~program:compiled
    ~inputs:(Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:width ())
    ()

(* The solo reference: the request run by itself under plain [run_pc]
   with [member_base] set to its member — the defining equation of
   request identity. *)
let solo_reference (r : Request.t) =
  let config = { Pc_vm.default_config with member_base = r.Request.member } in
  Autobatch.run_pc ~config r.Request.program ~batch:r.Request.inputs

let check_outputs msg expected actual =
  Alcotest.(check int)
    (msg ^ " output arity") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s output %d bitwise" msg i)
        true (Tensor.equal e a))
    (List.combine expected actual)

let outputs_by_id (stats : Server.stats) =
  List.map (fun c -> (c.Server.request.Request.id, c.Server.outputs))
    stats.Server.completions

(* ---------- Pc_vm.Lanes ---------- *)

let test_lanes_lifecycle () =
  let compiled = Lazy.force fib_compiled in
  let lanes =
    Pc_vm.Lanes.create compiled.Autobatch.registry compiled.Autobatch.stack
      ~z:3
  in
  Alcotest.(check int) "all free" 3 (Pc_vm.Lanes.free_count lanes);
  Alcotest.(check bool) "idle pool does not step" false (Pc_vm.Lanes.step lanes);
  Pc_vm.Lanes.load lanes ~lane:1 ~member:0
    ~inputs:[ Tensor.of_list [ 6. ] |> Fun.flip Tensor.slice_row 0 ];
  Alcotest.(check int) "one occupied" 2 (Pc_vm.Lanes.free_count lanes);
  Alcotest.(check bool) "live" true (Pc_vm.Lanes.live lanes ~lane:1);
  while Pc_vm.Lanes.step lanes do () done;
  Alcotest.(check bool) "finished" true (Pc_vm.Lanes.finished lanes ~lane:1);
  Alcotest.(check (list int)) "finished lanes" [ 1 ]
    (Pc_vm.Lanes.finished_lanes lanes);
  let outs = Pc_vm.Lanes.retire lanes ~lane:1 in
  Alcotest.(check int) "freed" 3 (Pc_vm.Lanes.free_count lanes);
  (* fib 6 = 13 with fib 0 = fib 1 = 1. *)
  check_f "fib 6" 13. (Tensor.get (List.hd outs) [||])

let test_lanes_recycling_bitwise () =
  (* A recycled lane must behave exactly like a fresh VM: run fib(10) in
     a lane, retire it, reuse the same lane for fib(5) while another lane
     is mid-flight, and compare against solo runs. *)
  let compiled = Lazy.force fib_compiled in
  let solo n =
    List.hd (Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ n ] ])
  in
  let lanes =
    Pc_vm.Lanes.create compiled.Autobatch.registry compiled.Autobatch.stack
      ~z:2
  in
  let elem n = Tensor.slice_row (Tensor.of_list [ n ]) 0 in
  Pc_vm.Lanes.load lanes ~lane:0 ~member:0 ~inputs:[ elem 10. ];
  Pc_vm.Lanes.load lanes ~lane:1 ~member:1 ~inputs:[ elem 13. ];
  (* Drain lane 0 (fib 10 finishes first), refill it mid-run. *)
  while not (Pc_vm.Lanes.finished lanes ~lane:0) do
    ignore (Pc_vm.Lanes.step lanes)
  done;
  let out10 = List.hd (Pc_vm.Lanes.retire lanes ~lane:0) in
  Pc_vm.Lanes.load lanes ~lane:0 ~member:0 ~inputs:[ elem 5. ];
  while Pc_vm.Lanes.step lanes do () done;
  let out5 = List.hd (Pc_vm.Lanes.retire lanes ~lane:0) in
  let out13 = List.hd (Pc_vm.Lanes.retire lanes ~lane:1) in
  check_f "fib 10 bitwise" (Tensor.get (solo 10.) [| 0 |]) (Tensor.get out10 [||]);
  check_f "fib 5 in recycled lane" (Tensor.get (solo 5.) [| 0 |])
    (Tensor.get out5 [||]);
  check_f "fib 13 undisturbed" (Tensor.get (solo 13.) [| 0 |])
    (Tensor.get out13 [||])

let test_lanes_input_mismatch () =
  let compiled = Lazy.force fib_compiled in
  let lanes =
    Pc_vm.Lanes.create compiled.Autobatch.registry compiled.Autobatch.stack
      ~z:1
  in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Pc_vm: input count mismatch") (fun () ->
      Pc_vm.Lanes.load lanes ~lane:0 ~member:0 ~inputs:[])

(* ---------- Request and Request_queue ---------- *)

let test_request_validation () =
  let compiled = Lazy.force fib_compiled in
  Alcotest.check_raises "no inputs"
    (Invalid_argument "Request: at least one input required") (fun () ->
      ignore (Request.make ~id:0 ~program:compiled ~inputs:[] ()));
  let r = fib_request ~id:7 ~width:3 6. in
  Alcotest.(check int) "width" 3 (Request.width r);
  Alcotest.(check int) "member defaults offset" (7 * 16) r.Request.member;
  check_f "input bytes" 24. (Request.input_bytes r);
  check_f "lane input row 2" 8.
    (Tensor.get (List.hd (Request.lane_inputs r ~row:2)) [||])

let test_queue_fifo_blocking () =
  let q = Request_queue.create () in
  let a = fib_request ~id:0 ~width:4 3. in
  let b = fib_request ~id:1 ~width:1 3. in
  ignore (Request_queue.offer q a);
  ignore (Request_queue.offer q b);
  (* FIFO with a wide head: nothing fits, even though b would. *)
  let fits r = Request.width r <= 2 in
  Alcotest.(check bool) "head blocks" true
    (Request_queue.pop_fifo q ~fits = None);
  (* Shortest-first skips the blocked head. *)
  (match Request_queue.pop_shortest q ~fits with
  | Some r -> Alcotest.(check int) "narrow one admitted" 1 r.Request.id
  | None -> Alcotest.fail "expected a fitting request");
  Alcotest.(check int) "one left" 1 (Request_queue.length q)

let test_queue_shortest_order () =
  let q = Request_queue.create () in
  let mk id cost =
    let r = fib_request ~id cost in
    ignore (Request_queue.offer q r)
  in
  mk 0 9.;
  mk 1 2.;
  mk 2 2.;
  mk 3 1.;
  let fits _ = true in
  let pop () =
    match Request_queue.pop_shortest q ~fits with
    | Some r -> r.Request.id
    | None -> -1
  in
  (* Force left-to-right pops (list literals evaluate right-to-left). *)
  let a = pop () in
  let b = pop () in
  let c = pop () in
  let d = pop () in
  Alcotest.(check (list int)) "cost order, ties by arrival" [ 3; 1; 2; 0 ]
    [ a; b; c; d ]

let test_queue_shed_reject_new () =
  let q = Request_queue.create ~depth:2 ~shed:Request_queue.Reject_new () in
  let r id = fib_request ~id 3. in
  Alcotest.(check bool) "first" true (Request_queue.offer q (r 0) = `Admitted);
  Alcotest.(check bool) "second" true (Request_queue.offer q (r 1) = `Admitted);
  (match Request_queue.offer q (r 2) with
  | `Shed victim -> Alcotest.(check int) "newcomer shed" 2 victim.Request.id
  | `Admitted -> Alcotest.fail "expected shed");
  Alcotest.(check int) "depth held" 2 (Request_queue.length q);
  Alcotest.(check int) "shed counted" 1 (Request_queue.shed_total q)

let test_queue_shed_drop_oldest () =
  let q = Request_queue.create ~depth:2 ~shed:Request_queue.Drop_oldest () in
  let r id = fib_request ~id 3. in
  ignore (Request_queue.offer q (r 0));
  ignore (Request_queue.offer q (r 1));
  (match Request_queue.offer q (r 2) with
  | `Shed victim -> Alcotest.(check int) "oldest shed" 0 victim.Request.id
  | `Admitted -> Alcotest.fail "expected shed");
  Alcotest.(check (list int)) "newcomer admitted in place" [ 1; 2 ]
    (List.map (fun x -> x.Request.id) (Request_queue.to_list q))

(* ---------- server determinism ---------- *)

let all_policies = [ Server.Fifo; Server.Shortest_first; Server.Synchronous ]

let test_serve_alone_matches_solo () =
  let r = nuts_request ~id:0 ~member:5 ~n_iter:2 () in
  let stats =
    Server.run
      ~config:{ Server.default_config with lanes = 4 }
      ~program:r.Request.program [ r ]
  in
  match stats.Server.completions with
  | [ c ] -> check_outputs "alone" (solo_reference r) c.Server.outputs
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 completion, got %d" (List.length cs))

let saturated_trace () =
  (* 10 single-lane chains plus two 2-wide requests through 4 lanes:
     more work than lanes, mixed widths, distinct members. *)
  List.init 10 (fun i ->
      nuts_request ~id:i ~member:(i * 3) ~n_iter:(1 + (i mod 2))
        ~arrival:(float_of_int (i mod 4))
        ())
  @ [
      nuts_request ~id:10 ~member:40 ~width:2 ~arrival:1.5 ();
      nuts_request ~id:11 ~member:50 ~width:2 ~n_iter:2 ~arrival:0.5 ();
    ]

let test_serve_saturated_bitwise () =
  (* The acceptance criterion: under every admission policy, every
     request in a saturated mixed-width server reproduces its solo
     outputs exactly. *)
  let trace = saturated_trace () in
  let program = (List.hd trace).Request.program in
  List.iter
    (fun policy ->
      let stats =
        Server.run
          ~config:{ Server.default_config with lanes = 4; policy }
          ~program trace
      in
      Alcotest.(check int)
        (Server.policy_name policy ^ " all served")
        (List.length trace)
        (List.length stats.Server.completions);
      List.iter
        (fun c ->
          let r = c.Server.request in
          check_outputs
            (Printf.sprintf "%s request %d" (Server.policy_name policy)
               r.Request.id)
            (solo_reference r) c.Server.outputs)
        stats.Server.completions)
    all_policies

let test_serve_arrival_order_invariance () =
  (* Same requests, three different arrival patterns (bursty, reversed,
     spread) and different lane counts: per-request outputs never move. *)
  let base = saturated_trace () in
  let program = (List.hd base).Request.program in
  let rearrange arrival_of =
    List.map
      (fun (r : Request.t) ->
        { r with Request.arrival = arrival_of r.Request.id })
      base
  in
  let reference =
    outputs_by_id
      (Server.run
         ~config:{ Server.default_config with lanes = 4 }
         ~program base)
  in
  List.iter
    (fun (name, trace, lanes) ->
      let got =
        Server.run ~config:{ Server.default_config with lanes } ~program trace
      in
      List.iter
        (fun (id, outs) ->
          check_outputs
            (Printf.sprintf "%s request %d" name id)
            (List.assoc id reference) outs)
        (outputs_by_id got))
    [
      ("burst", rearrange (fun _ -> 0.), 4);
      ("reversed", rearrange (fun id -> float_of_int (20 - id)), 4);
      ("narrow device", rearrange (fun id -> float_of_int id *. 7.), 2);
    ]

(* ---------- server queueing behavior ---------- *)

let test_server_sheds_on_full_queue () =
  (* 1 lane, queue depth 2, 6 simultaneous arrivals: the head is admitted
     to the lane, two wait, three are shed (Reject_new keeps the oldest). *)
  let trace = List.init 6 (fun id -> fib_request ~id 10.) in
  let stats =
    Server.run
      ~config:
        {
          Server.default_config with
          lanes = 1;
          queue_depth = 2;
          shed = Request_queue.Reject_new;
        }
      ~program:(Lazy.force fib_compiled) trace
  in
  Alcotest.(check int) "three served" 3 (List.length stats.Server.completions);
  Alcotest.(check (list int)) "newest shed" [ 3; 4; 5 ]
    (List.map (fun r -> r.Request.id) stats.Server.shed);
  let stats_drop =
    Server.run
      ~config:
        {
          Server.default_config with
          lanes = 1;
          queue_depth = 2;
          shed = Request_queue.Drop_oldest;
        }
      ~program:(Lazy.force fib_compiled) trace
  in
  (* Drop_oldest keeps the freshest two waiters (ids 4 and 5) plus the
     request already on the lane. *)
  Alcotest.(check (list int)) "oldest shed" [ 1; 2; 3 ]
    (List.map (fun r -> r.Request.id) stats_drop.Server.shed);
  Alcotest.(check (list int)) "freshest served" [ 0; 4; 5 ]
    (List.sort compare
       (List.map
          (fun c -> c.Server.request.Request.id)
          stats_drop.Server.completions))

let test_server_idles_between_arrivals () =
  (* Arrival gaps far larger than a request's service time: the server
     must jump its clock instead of spinning, and queueing latency stays
     zero (each request starts the moment it arrives). *)
  let trace =
    List.init 3 (fun id -> fib_request ~id ~arrival:(float_of_int id *. 1e4) 4.)
  in
  let stats =
    Server.run
      ~config:{ Server.default_config with lanes = 2 }
      ~program:(Lazy.force fib_compiled) trace
  in
  Alcotest.(check int) "all served" 3 (List.length stats.Server.completions);
  Alcotest.(check bool) "idle periods counted" true (stats.Server.idle_steps > 0);
  Alcotest.(check bool) "clock reached the last arrival" true
    (stats.Server.makespan >= 2e4);
  List.iter
    (fun c -> check_f "no queueing delay" 0. (Server.queueing_latency c))
    stats.Server.completions

let test_server_rejects_wider_than_device () =
  let wide = fib_request ~id:0 ~width:3 5. in
  let narrow = fib_request ~id:1 5. in
  let stats =
    Server.run
      ~config:{ Server.default_config with lanes = 2 }
      ~program:(Lazy.force fib_compiled) [ wide; narrow ]
  in
  Alcotest.(check (list int)) "wide rejected" [ 0 ]
    (List.map (fun r -> r.Request.id) stats.Server.rejected);
  Alcotest.(check (list int)) "narrow served" [ 1 ]
    (List.map (fun c -> c.Server.request.Request.id) stats.Server.completions)

let test_server_latency_accounting () =
  let trace = List.init 5 (fun id -> fib_request ~id 8.) in
  let stats =
    Server.run
      ~config:{ Server.default_config with lanes = 2 }
      ~program:(Lazy.force fib_compiled) trace
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "queued <= started" true
        (c.Server.queued <= c.Server.started);
      Alcotest.(check bool) "started < finished" true
        (c.Server.started < c.Server.finished);
      check_f "total = queueing + service"
        (Server.total_latency c)
        (Server.queueing_latency c +. Server.service_latency c))
    stats.Server.completions;
  Alcotest.(check bool) "occupancy in (0, 1]" true
    (stats.Server.mean_occupancy > 0. && stats.Server.mean_occupancy <= 1.)

let test_server_closed_loop () =
  (* A one-client closed loop issues each follow-up on completion; the
     chain of 4 requests serializes, and each reproduces its solo run. *)
  let issued = ref 1 in
  let on_complete _c =
    if !issued >= 4 then None
    else begin
      let id = !issued in
      incr issued;
      Some (fib_request ~id (6. +. float_of_int id))
    end
  in
  let stats =
    Server.run
      ~config:{ Server.default_config with lanes = 2 }
      ~on_complete
      ~program:(Lazy.force fib_compiled)
      [ fib_request ~id:0 6. ]
  in
  Alcotest.(check int) "chain served" 4 (List.length stats.Server.completions);
  List.iter
    (fun c ->
      check_outputs
        (Printf.sprintf "follow-up %d" c.Server.request.Request.id)
        (solo_reference c.Server.request)
        c.Server.outputs)
    stats.Server.completions

(* ---------- instrument gauge and engine counters ---------- *)

let test_occupancy_gauge () =
  let ins = Instrument.create () in
  check_f "no samples reads full" 1. (Instrument.mean_occupancy ins);
  for _ = 1 to 10 do
    Instrument.record_live ins ~live:2 ~lanes:4
  done;
  check_f "mean over samples" 0.5 (Instrument.mean_occupancy ins);
  Alcotest.(check int) "samples counted" 10 (Instrument.live_samples ins);
  let series = Instrument.occupancy_series ins in
  Alcotest.(check bool) "series non-empty" true (List.length series > 0);
  List.iter (fun (_, occ) -> check_f "bucket occupancy" 0.5 occ) series

let test_occupancy_gauge_compaction () =
  let ins = Instrument.create () in
  (* Twice the bucket budget of samples: the gauge must downsample, keep
     the step axis anchored at the start, and preserve the mean. *)
  for i = 1 to 1024 do
    Instrument.record_live ins ~live:(if i <= 512 then 4 else 0) ~lanes:4
  done;
  let series = Instrument.occupancy_series ins in
  Alcotest.(check bool) "bounded" true (List.length series <= 256);
  (match series with
  | (first_step, first_occ) :: _ ->
    Alcotest.(check int) "anchored at step 0" 0 first_step;
    check_f "early buckets full" 1. first_occ
  | [] -> Alcotest.fail "empty series");
  check_f "mean preserved" 0.5 (Instrument.mean_occupancy ins);
  (match List.rev series with
  | (_, last_occ) :: _ -> check_f "late buckets empty" 0. last_occ
  | [] -> ())

let test_engine_refill_retire_counters () =
  let e = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.charge_refill e ~bytes:64.;
  Engine.charge_refill e ~bytes:64.;
  Engine.charge_retire e ~bytes:128.;
  let c = (Engine.snapshot e).Engine.at in
  Alcotest.(check int) "refills" 2 c.Engine.Counters.lane_refills;
  Alcotest.(check int) "retires" 1 c.Engine.Counters.lane_retires;
  check_f "traffic accumulates" 256. c.Engine.Counters.traffic_bytes;
  Alcotest.(check bool) "time advances" true (Engine.elapsed e > 0.);
  let sum = Engine.Counters.add c Engine.Counters.zero in
  Alcotest.(check int) "refills survive add" 2 sum.Engine.Counters.lane_refills;
  Alcotest.(check int) "retires survive add" 1 sum.Engine.Counters.lane_retires

let test_server_charges_engine () =
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let trace = List.init 4 (fun id -> fib_request ~id 6.) in
  let stats =
    Server.run
      ~config:
        {
          Server.default_config with
          lanes = 2;
          vm = { Pc_vm.default_config with engine = Some engine };
        }
      ~program:(Lazy.force fib_compiled) trace
  in
  let c = (Engine.snapshot engine).Engine.at in
  Alcotest.(check int) "every lane load charged" 4 c.Engine.Counters.lane_refills;
  Alcotest.(check int) "every retire charged" 4 c.Engine.Counters.lane_retires;
  (* With an engine, the server clock runs on simulated seconds. *)
  check_f "makespan is simulated time" (Engine.elapsed engine)
    stats.Server.makespan

(* ---------- serving harness ---------- *)

let test_serving_harness_smoke () =
  let stats =
    Serving.run ~dim:3 ~lanes:4 ~n_requests:6 ~max_iter:2 ~loads:[ 0.9 ]
      ~policies:[ Server.Synchronous; Server.Fifo ]
      ~closed_clients:0 ~seed:0xFEEDL ()
  in
  Alcotest.(check int) "one point per policy" 2 (List.length stats.Serving.points);
  List.iter
    (fun p ->
      Alcotest.(check int) "all complete" 6 p.Serving.completed;
      Alcotest.(check bool) "throughput positive" true (p.Serving.throughput > 0.);
      Alcotest.(check bool) "latency percentiles ordered" true
        (p.Serving.p50 <= p.Serving.p95 && p.Serving.p95 <= p.Serving.p99))
    stats.Serving.points;
  let csv = Serving.to_csv stats in
  Alcotest.(check bool) "csv has header and rows" true
    (List.length (String.split_on_char '\n' csv) >= 4)

let suites =
  [
    ( "serve-lanes",
      [
        t "lifecycle" `Quick test_lanes_lifecycle;
        t "recycling is bitwise clean" `Quick test_lanes_recycling_bitwise;
        t "input mismatch" `Quick test_lanes_input_mismatch;
      ] );
    ( "serve-queue",
      [
        t "request validation" `Quick test_request_validation;
        t "fifo head-of-line blocking" `Quick test_queue_fifo_blocking;
        t "shortest-first order" `Quick test_queue_shortest_order;
        t "reject-new shed" `Quick test_queue_shed_reject_new;
        t "drop-oldest shed" `Quick test_queue_shed_drop_oldest;
      ] );
    ( "serve-determinism",
      [
        t "alone equals solo run" `Quick test_serve_alone_matches_solo;
        t "saturated server, all policies" `Slow test_serve_saturated_bitwise;
        t "arrival order invariance" `Slow test_serve_arrival_order_invariance;
      ] );
    ( "serve-server",
      [
        t "full queue sheds" `Quick test_server_sheds_on_full_queue;
        t "idles between arrivals" `Quick test_server_idles_between_arrivals;
        t "rejects wider than device" `Quick test_server_rejects_wider_than_device;
        t "latency accounting" `Quick test_server_latency_accounting;
        t "closed loop follow-ups" `Quick test_server_closed_loop;
        t "charges engine refills and retires" `Quick test_server_charges_engine;
      ] );
    ( "serve-instrument",
      [
        t "occupancy gauge" `Quick test_occupancy_gauge;
        t "gauge compaction" `Quick test_occupancy_gauge_compaction;
        t "engine refill/retire counters" `Quick test_engine_refill_retire_counters;
      ] );
    ("serve-harness", [ t "smoke" `Slow test_serving_harness_smoke ]);
  ]
