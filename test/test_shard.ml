(* Tests for the multi-device sharded runtime: batch partitioning, the
   collective cost formulas, counter merging, and the acceptance
   criterion that sharded execution is bitwise-identical to the
   single-device run for the same seed. *)

let t = Alcotest.test_case
let check_f = Alcotest.(check (float 1e-12))

(* ---------- partitioning ---------- *)

let check_parts msg parts expected =
  Alcotest.(check (list (pair int int)))
    msg expected
    (Array.to_list
       (Array.map (fun p -> (p.Shard_vm.offset, p.Shard_vm.length)) parts))

let test_partition_remainder () =
  (* Front-loaded remainder: 10 over 4 shards is 3,3,2,2. *)
  check_parts "z=10 n=4"
    (Shard_vm.partition ~z:10 ~shards:4)
    [ (0, 3); (3, 3); (6, 2); (8, 2) ]

let test_partition_even () =
  check_parts "z=8 n=4"
    (Shard_vm.partition ~z:8 ~shards:4)
    [ (0, 2); (2, 2); (4, 2); (6, 2) ]

let test_partition_more_shards_than_members () =
  (* Never create empty shards: k = min(shards, z). *)
  check_parts "z=3 n=8"
    (Shard_vm.partition ~z:3 ~shards:8)
    [ (0, 1); (1, 1); (2, 1) ]

let test_partition_identity () =
  check_parts "z=5 n=1" (Shard_vm.partition ~z:5 ~shards:1) [ (0, 5) ]

let test_partition_covers () =
  (* Exact cover of [0, z): contiguous, ordered, total length z. *)
  for z = 1 to 17 do
    for shards = 1 to 9 do
      let parts = Shard_vm.partition ~z ~shards in
      let next = ref 0 in
      Array.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "contiguous z=%d n=%d" z shards)
            !next p.Shard_vm.offset;
          Alcotest.(check bool) "non-empty" true (p.Shard_vm.length > 0);
          next := p.Shard_vm.offset + p.Shard_vm.length)
        parts;
      Alcotest.(check int) (Printf.sprintf "total z=%d n=%d" z shards) z !next
    done
  done

let test_partition_invalid () =
  Alcotest.check_raises "z=0"
    (Invalid_argument "Shard_vm.partition: batch must be positive") (fun () ->
      ignore (Shard_vm.partition ~z:0 ~shards:2));
  Alcotest.check_raises "shards=0"
    (Invalid_argument "Shard_vm.partition: need at least one shard") (fun () ->
      ignore (Shard_vm.partition ~z:4 ~shards:0))

(* ---------- collective cost formulas ---------- *)

let round_link = { Mesh.name = "round"; bytes_per_sec = 100.; latency = 0.5 }
let mesh_n n = Mesh.create ~device:Device.gpu ~link:round_link ~n ()

let test_ring_all_reduce () =
  (* 2·(N-1)/N·bytes/bw + 2·(N-1)·lat = 2·(3/4)·4 + 6·0.5 = 9. *)
  check_f "n=4" 9.
    (Collectives.all_reduce_time (mesh_n 4) Collectives.Ring ~bytes:400.)

let test_tree_all_reduce () =
  (* 2·ceil(log2 N)·(bytes/bw + lat) = 4·(4 + 0.5) = 18. *)
  check_f "n=4" 18.
    (Collectives.all_reduce_time (mesh_n 4) Collectives.Tree ~bytes:400.);
  (* Non-power-of-two rounds the tree depth up: ceil(log2 5) = 3. *)
  check_f "n=5" 27.
    (Collectives.all_reduce_time (mesh_n 5) Collectives.Tree ~bytes:400.)

let test_all_gather () =
  (* Ring: (N-1)/N·bytes/bw + (N-1)·lat = 3 + 1.5 = 4.5. *)
  check_f "ring n=4" 4.5
    (Collectives.all_gather_time (mesh_n 4) Collectives.Ring ~bytes:400.);
  (* Recursive doubling: same bandwidth term, ceil(log2 N) latencies. *)
  check_f "tree n=4" 4.
    (Collectives.all_gather_time (mesh_n 4) Collectives.Tree ~bytes:400.)

let test_broadcast () =
  (* Pipelined chain: bytes/bw + (N-1)·lat = 4 + 1.5 = 5.5. *)
  check_f "ring n=4" 5.5
    (Collectives.broadcast_time (mesh_n 4) Collectives.Ring ~bytes:400.);
  (* Tree: ceil(log2 N)·(bytes/bw + lat) = 2·4.5 = 9. *)
  check_f "tree n=4" 9.
    (Collectives.broadcast_time (mesh_n 4) Collectives.Tree ~bytes:400.)

let test_single_device_free () =
  let m = mesh_n 1 in
  List.iter
    (fun algo ->
      check_f "all_reduce" 0. (Collectives.all_reduce_time m algo ~bytes:1e9);
      check_f "all_gather" 0. (Collectives.all_gather_time m algo ~bytes:1e9);
      check_f "broadcast" 0. (Collectives.broadcast_time m algo ~bytes:1e9))
    [ Collectives.Ring; Collectives.Tree ]

(* ---------- counter merging ---------- *)

let test_add_counters () =
  let e1 = Engine.create ~device:Device.gpu ~mode:Engine.Eager () in
  let e2 = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  Engine.charge_block e1 ~ops:[ ("a", 100.) ] ~control_ops:1 ~traffic_bytes:64.;
  Engine.charge_block e2 ~ops:[ ("b", 50.); ("c", 25.) ] ~control_ops:0
    ~traffic_bytes:32.;
  let c1 = (Engine.snapshot e1).Engine.at and c2 = (Engine.snapshot e2).Engine.at in
  let sum = Engine.Counters.add c1 c2 in
  Alcotest.(check int) "blocks"
    (c1.Engine.Counters.blocks + c2.Engine.Counters.blocks)
    sum.Engine.Counters.blocks;
  check_f "flops" (c1.Engine.Counters.flops +. c2.Engine.Counters.flops)
    sum.Engine.Counters.flops;
  check_f "traffic"
    (c1.Engine.Counters.traffic_bytes +. c2.Engine.Counters.traffic_bytes)
    sum.Engine.Counters.traffic_bytes;
  check_f "elapsed"
    (Engine.elapsed e1 +. Engine.elapsed e2)
    sum.Engine.Counters.elapsed_seconds;
  let z = Engine.Counters.zero in
  Alcotest.(check int) "zero blocks" 0 z.Engine.Counters.blocks;
  check_f "zero elapsed" 0. z.Engine.Counters.elapsed_seconds

let test_engine_merge () =
  let dst = Engine.create ~device:Device.gpu ~mode:Engine.Eager () in
  let src = Engine.create ~device:Device.gpu ~mode:Engine.Eager () in
  Engine.charge_block dst ~ops:[ ("a", 100.) ] ~control_ops:2 ~traffic_bytes:8.;
  Engine.charge_block src ~ops:[ ("b", 200.) ] ~control_ops:1 ~traffic_bytes:16.;
  let before = Engine.elapsed dst and s_src = Engine.snapshot src in
  Engine.merge ~into:dst s_src;
  check_f "time accumulates"
    (before +. s_src.Engine.at.Engine.Counters.elapsed_seconds)
    (Engine.elapsed dst);
  let merged = (Engine.snapshot dst).Engine.at in
  check_f "flops accumulate" 300. merged.Engine.Counters.flops;
  Alcotest.(check int) "blocks accumulate" 2 merged.Engine.Counters.blocks

(* ---------- sharded NUTS: determinism and time accounting ---------- *)

let nuts_fixture =
  lazy
    (let dim = 5 in
     let model = Gaussian_model.model ~dim () in
     let reg, _ = Nuts_dsl.setup ~seed:0xD15EA5EL ~model () in
     let q0 = Tensor.zeros [| dim |] in
     let eps = Nuts.find_reasonable_eps ~seed:0xD15EA5EL ~model ~q0 () in
     let cfg = Nuts.default_config ~eps () in
     let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
     let compiled =
       Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model)
         prog
     in
     let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:2 ~n_burn:0 ~batch:6 () in
     (compiled, batch))

let sharded_config ?(mode = None) devices =
  { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:devices (); mode }

let check_outputs msg expected actual =
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s output %d bitwise" msg i)
        true (Tensor.equal e a))
    (List.combine expected actual)

let test_sharded_matches_pc () =
  (* The acceptance criterion: for any device count the sharded run
     reassembles exactly the single-device program-counter outputs,
     because lane b of shard o draws the RNG streams of member o+b. *)
  let compiled, batch = Lazy.force nuts_fixture in
  let reference = Autobatch.run_pc compiled ~batch in
  List.iter
    (fun devices ->
      let r =
        Autobatch.run_sharded ~config:(sharded_config devices) compiled ~batch
      in
      check_outputs
        (Printf.sprintf "pc devices=%d" devices)
        reference r.Shard_vm.outputs)
    [ 1; 2; 3; 4; 6; 8 ]

let test_sharded_matches_local () =
  let compiled, batch = Lazy.force nuts_fixture in
  let reference = Autobatch.run_local compiled ~batch in
  List.iter
    (fun devices ->
      let r =
        Autobatch.run_sharded ~config:(sharded_config devices) ~runtime:`Local
          compiled ~batch
      in
      check_outputs
        (Printf.sprintf "local devices=%d" devices)
        reference r.Shard_vm.outputs)
    [ 2; 4 ]

let test_sharded_time_accounting () =
  let compiled, batch = Lazy.force nuts_fixture in
  let config = sharded_config ~mode:(Some Engine.Fused) 4 in
  let r = Autobatch.run_sharded ~config compiled ~batch in
  Alcotest.(check int) "one time per shard" 4
    (Array.length r.Shard_vm.shard_times);
  check_f "compute is the slowest shard"
    (Array.fold_left Float.max 0. r.Shard_vm.shard_times)
    r.Shard_vm.compute_time;
  Alcotest.(check bool) "supersteps counted" true (r.Shard_vm.supersteps > 0);
  let output_bytes =
    List.fold_left
      (fun acc t -> acc +. (8. *. float_of_int (Tensor.numel t)))
      0. r.Shard_vm.outputs
  in
  let expected_collective =
    (float_of_int r.Shard_vm.supersteps
    *. Collectives.all_reduce_time config.Shard_vm.mesh Collectives.Ring
         ~bytes:8.)
    +. Collectives.all_gather_time config.Shard_vm.mesh Collectives.Ring
         ~bytes:output_bytes
  in
  check_f "collective priced from supersteps and outputs" expected_collective
    r.Shard_vm.collective_time;
  check_f "sim time decomposes"
    (r.Shard_vm.compute_time +. r.Shard_vm.collective_time)
    r.Shard_vm.sim_time;
  (* Engine counters from all four shards land in the merged total. *)
  Alcotest.(check bool) "merged fused launches" true
    (r.Shard_vm.counters.Engine.Counters.fused_launches > 0)

let test_sharded_counters_merged () =
  let compiled, batch = Lazy.force nuts_fixture in
  let single =
    Autobatch.run_sharded
      ~config:(sharded_config ~mode:(Some Engine.Fused) 1)
      compiled ~batch
  in
  let sharded =
    Autobatch.run_sharded
      ~config:(sharded_config ~mode:(Some Engine.Fused) 3)
      compiled ~batch
  in
  (* Results are identical, but the cost profile legitimately shifts:
     each shard only pays flops for its own z lanes, so sharding sheds
     masked-lane waste (total flops can only drop), while every shard
     re-runs the schedule, so launch counts can only grow. *)
  Alcotest.(check bool) "sharding sheds masked-lane flops" true
    (sharded.Shard_vm.counters.Engine.Counters.flops > 0.
    && sharded.Shard_vm.counters.Engine.Counters.flops
       <= single.Shard_vm.counters.Engine.Counters.flops);
  Alcotest.(check bool) "launch overheads multiply" true
    (sharded.Shard_vm.counters.Engine.Counters.fused_launches
    >= single.Shard_vm.counters.Engine.Counters.fused_launches)

let suites =
  [
    ( "shard-partition",
      [
        t "remainder front-loaded" `Quick test_partition_remainder;
        t "even split" `Quick test_partition_even;
        t "more shards than members" `Quick test_partition_more_shards_than_members;
        t "single shard identity" `Quick test_partition_identity;
        t "exact cover" `Quick test_partition_covers;
        t "invalid arguments" `Quick test_partition_invalid;
      ] );
    ( "collectives",
      [
        t "ring all-reduce" `Quick test_ring_all_reduce;
        t "tree all-reduce" `Quick test_tree_all_reduce;
        t "all-gather" `Quick test_all_gather;
        t "broadcast" `Quick test_broadcast;
        t "single device is free" `Quick test_single_device_free;
      ] );
    ( "engine-merge",
      [
        t "add_counters" `Quick test_add_counters;
        t "merge into engine" `Quick test_engine_merge;
      ] );
    ( "shard-vm",
      [
        t "pc bitwise determinism" `Quick test_sharded_matches_pc;
        t "local bitwise determinism" `Quick test_sharded_matches_local;
        t "time accounting" `Quick test_sharded_time_accounting;
        t "counters merged" `Quick test_sharded_counters_merged;
      ] );
  ]
