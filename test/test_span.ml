(* The request-scoped tracing layer: span recording and tree validation
   (Obs_span), sliding-window counters and rolling histograms
   (Obs_window), the multi-window burn-rate monitor (Obs_slo), wall-clock
   probes (Obs_wall), and a QCheck round-trip fuzzer for the JSON layer
   everything exports through. The end-to-end invariants — spans cost
   zero simulated time, every completion gets exactly one tree — are
   gated by `bench obs2`; this file covers the unit contracts. *)

let span ?(trace = 0) ?(track = 0) ~id ?(parent = Obs_span.no_parent) ~name t0
    t1 =
  {
    Obs_span.sp_trace = trace;
    sp_id = id;
    sp_parent = parent;
    sp_track = track;
    sp_name = name;
    sp_t0 = t0;
    sp_t1 = t1;
  }

(* ---------- Obs_span ---------- *)

let test_span_tree_well_formed () =
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~name:"request" 0. 10.);
  Obs_span.record t (span ~id:1 ~parent:0 ~name:"queue" 0. 4.);
  Obs_span.record t (span ~id:2 ~parent:0 ~name:"service" 4. 10.);
  Obs_span.record t (span ~id:3 ~parent:2 ~name:"preempted" 5. 7.);
  let st = Obs_span.validate t in
  Alcotest.(check int) "one trace" 1 st.Obs_span.traces;
  Alcotest.(check int) "well formed" 1 st.Obs_span.well_formed;
  Alcotest.(check bool) "all well formed" true (Obs_span.all_well_formed t);
  Alcotest.(check int) "count request" 1 (Obs_span.count_named t "request");
  Alcotest.(check int) "count preempted" 1 (Obs_span.count_named t "preempted");
  Alcotest.(check int) "length" 4 (Obs_span.length t)

let test_span_tree_violations () =
  (* Orphan parent reference. *)
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~name:"request" 0. 10.);
  Obs_span.record t (span ~id:1 ~parent:99 ~name:"lost" 1. 2.);
  let st = Obs_span.validate t in
  Alcotest.(check int) "orphans" 1 st.Obs_span.orphans;
  Alcotest.(check bool) "not well formed" false (Obs_span.all_well_formed t);
  (* Two roots in one request trace. *)
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~name:"a" 0. 5.);
  Obs_span.record t (span ~id:1 ~name:"b" 5. 9.);
  let st = Obs_span.validate t in
  Alcotest.(check int) "multi root" 1 st.Obs_span.multi_root;
  (* Child escapes its parent's interval. *)
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~name:"request" 2. 5.);
  Obs_span.record t (span ~id:1 ~parent:0 ~name:"early" 0. 4.);
  let st = Obs_span.validate t in
  Alcotest.(check int) "nest violation" 1 st.Obs_span.nest_violations;
  (* Inverted interval. *)
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~name:"request" 5. 1.);
  let st = Obs_span.validate t in
  Alcotest.(check int) "inverted" 1 st.Obs_span.inverted

let test_span_ops_trace_exempt () =
  (* Negative traces are operational streams: many roots, no tree rule. *)
  let t = Obs_span.create () in
  for i = 0 to 4 do
    let at = float_of_int i in
    Obs_span.record t
      (span ~trace:Obs_span.ops_trace ~track:Obs_span.ops_track ~id:i
         ~name:"checkpoint" at at)
  done;
  let st = Obs_span.validate t in
  Alcotest.(check int) "no request traces" 0 st.Obs_span.traces;
  Alcotest.(check bool) "well formed" true (Obs_span.all_well_formed t)

let test_span_sink_and_limit () =
  let t = Obs_span.create ~limit:2 () in
  let sink = Obs_span.sink t in
  for i = 0 to 3 do
    sink
      (Obs_sink.Span
         {
           trace = i;
           span = 0;
           parent = Obs_span.no_parent;
           track = 0;
           name = "request";
           t0 = 0.;
           t1 = 1.;
         })
  done;
  (* Non-span events are ignored, not recorded. *)
  sink (Obs_sink.Ladder { level = "normal"; occupancy = 0.1; cause = "occupancy"; at = 0. });
  Alcotest.(check int) "kept up to limit" 2 (Obs_span.length t);
  Alcotest.(check int) "dropped counted" 2 (Obs_span.dropped t)

let test_span_chrome_roundtrip () =
  let t = Obs_span.create () in
  Obs_span.record t (span ~id:0 ~track:3 ~name:"request" 0. 10.);
  Obs_span.record t (span ~id:1 ~parent:0 ~track:3 ~name:"service" 2. 10.);
  Obs_span.record t
    (span ~trace:Obs_span.ops_trace ~track:Obs_span.ops_track ~id:2
       ~name:"restore" 4. 4.);
  let path = Filename.temp_file "autobatch-span" ".json" in
  Obs_span.write t ~path;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  match Obs_json.of_string contents with
  | Error e -> Alcotest.failf "chrome export unparseable: %s" e
  | Ok doc -> (
    match Obs_json.member "traceEvents" doc with
    | Some (Obs_json.List evs) ->
      (* 2 "X" spans + 1 instant + thread-name metadata records. *)
      Alcotest.(check bool) "has events" true (List.length evs >= 3)
    | _ -> Alcotest.fail "no traceEvents array")

let test_span_server_integration () =
  (* A small tenant trace run bare and observed: attaching the recorder
     must not move the simulated clock, and every completion must appear
     as exactly one well-formed tree. *)
  let run sink =
    Tenant_load.run ~n_requests:200 ~verify:false ~keep_outputs:true
      ~baseline:false ?sink ()
  in
  let bare = run None in
  let recorder = Obs_span.create () in
  let observed = run (Some (Obs_span.sink recorder)) in
  let stats (r : Tenant_load.result) =
    r.Tenant_load.fair.Tenant_load.stats
  in
  let digest r =
    List.map
      (fun c ->
        ( c.Tenant_server.c_item.Admission.request.Request.id,
          c.Tenant_server.c_started,
          c.Tenant_server.c_finished ))
      (stats r).Tenant_server.completions
  in
  Alcotest.(check (float 0.))
    "same makespan"
    (stats bare).Tenant_server.makespan
    (stats observed).Tenant_server.makespan;
  Alcotest.(check bool) "same completions" true (digest bare = digest observed);
  let n_done = List.length (stats observed).Tenant_server.completions in
  Alcotest.(check bool) "completions exist" true (n_done > 0);
  Alcotest.(check int) "one tree per completion" n_done
    (Obs_span.count_named recorder "request");
  Alcotest.(check bool) "trees well formed" true
    (Obs_span.all_well_formed recorder)

(* ---------- Obs_window ---------- *)

let test_window_counter () =
  let c = Obs_window.counter ~buckets:10 ~window:10. () in
  for i = 0 to 4 do
    Obs_window.add c ~now:(float_of_int i) 1.
  done;
  Alcotest.(check (float 1e-9)) "total in window" 5. (Obs_window.total c ~now:4.);
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Obs_window.rate c ~now:4.);
  Alcotest.(check (float 1e-9)) "all expired" 0. (Obs_window.total c ~now:100.);
  Obs_window.add c ~now:100. 3.;
  Alcotest.(check (float 1e-9)) "fresh after slide" 3.
    (Obs_window.total c ~now:100.);
  (* An observation older than the ring is dropped, not resurrected. *)
  Obs_window.add c ~now:50. 7.;
  Alcotest.(check (float 1e-9)) "stale add dropped" 3.
    (Obs_window.total c ~now:100.)

let test_window_hist () =
  let h = Obs_window.hist ~buckets:10 ~window:10. () in
  List.iter
    (fun (t, v) -> Obs_window.observe h ~now:t v)
    [ (0., 0.010); (1., 0.020); (2., 0.030); (3., 0.040); (4., 0.050) ];
  Alcotest.(check int) "count" 5 (Obs_window.hist_count h ~now:4.);
  Alcotest.(check (float 1e-9)) "sum" 0.15 (Obs_window.hist_sum h ~now:4.);
  Alcotest.(check (float 1e-9)) "mean" 0.03 (Obs_window.hist_mean h ~now:4.);
  let p50 = Obs_window.hist_quantile h ~now:4. 0.5 in
  Alcotest.(check bool) "p50 within range" true (p50 >= 0.010 && p50 <= 0.050);
  (* Slide past everything: the window forgets. *)
  Alcotest.(check int) "count after slide" 0 (Obs_window.hist_count h ~now:50.);
  Alcotest.(check bool) "quantile empty is nan" true
    (Float.is_nan (Obs_window.hist_quantile h ~now:50. 0.5))

(* ---------- Obs_slo ---------- *)

let slo_monitor () =
  Obs_slo.create
    ~classes:
      [
        Obs_slo.class_config ~cls:"lat" ~threshold:0.1 ~budget:0.1
          ~fast_window:10. ~slow_window:50. ~burn_threshold:2. ();
      ]
    ()

let test_slo_fire_and_resolve () =
  let t = slo_monitor () in
  (* Clean traffic: nothing fires. *)
  for i = 0 to 19 do
    Obs_slo.observe t ~cls:"lat" ~now:(0.1 *. float_of_int i) ~ok:true
  done;
  Alcotest.(check (list Alcotest.bool)) "quiet" []
    (List.map (fun a -> a.Obs_slo.a_fired) (Obs_slo.poll t ~now:2.));
  Alcotest.(check bool) "not firing" false (Obs_slo.firing t ~cls:"lat");
  (* Sustained badness: both windows burn, one fire edge. *)
  for i = 0 to 19 do
    Obs_slo.observe t ~cls:"lat" ~now:(2. +. (0.1 *. float_of_int i)) ~ok:false
  done;
  (match Obs_slo.poll t ~now:4. with
  | [ a ] ->
    Alcotest.(check bool) "fired" true a.Obs_slo.a_fired;
    Alcotest.(check string) "class" "lat" a.Obs_slo.a_cls;
    Alcotest.(check bool) "burns reported" true
      (a.Obs_slo.a_burn_fast >= 2. && a.Obs_slo.a_burn_slow >= 2.)
  | alerts -> Alcotest.failf "expected one fire edge, got %d" (List.length alerts));
  Alcotest.(check bool) "firing" true (Obs_slo.firing t ~cls:"lat");
  Alcotest.(check bool) "any firing" true (Obs_slo.any_firing t);
  (* Steady state: the edge is not re-reported. *)
  Alcotest.(check int) "no repeat" 0 (List.length (Obs_slo.poll t ~now:4.5));
  (* Recovery: the bad window ages out entirely, burns drop under half
     the threshold, one resolve edge. *)
  for i = 0 to 99 do
    Obs_slo.observe t ~cls:"lat" ~now:(10. +. float_of_int i) ~ok:true
  done;
  (match Obs_slo.poll t ~now:109. with
  | [ a ] -> Alcotest.(check bool) "resolved" false a.Obs_slo.a_fired
  | alerts ->
    Alcotest.failf "expected one resolve edge, got %d" (List.length alerts));
  Alcotest.(check bool) "not firing after" false (Obs_slo.firing t ~cls:"lat");
  Alcotest.(check int) "one fire total" 1 (Obs_slo.fired_total t)

let test_slo_latency_and_unknown () =
  let t = slo_monitor () in
  (* observe_latency classifies against the class threshold. *)
  for i = 0 to 9 do
    Obs_slo.observe_latency t ~cls:"lat" ~now:(float_of_int i) 0.05
  done;
  let fast, slow = Obs_slo.burn_rates t ~cls:"lat" ~now:9. in
  Alcotest.(check (float 1e-9)) "fast burn clean" 0. fast;
  Alcotest.(check (float 1e-9)) "slow burn clean" 0. slow;
  for i = 0 to 9 do
    Obs_slo.observe_latency t ~cls:"lat" ~now:(9. +. float_of_int i) 0.5
  done;
  let fast, _ = Obs_slo.burn_rates t ~cls:"lat" ~now:18. in
  Alcotest.(check bool) "fast burn hot" true (fast > 2.);
  (* Unknown classes are ignored, not errors. *)
  Obs_slo.observe t ~cls:"nope" ~now:0. ~ok:false;
  let f, s = Obs_slo.burn_rates t ~cls:"nope" ~now:1. in
  Alcotest.(check (float 0.)) "unknown fast" 0. f;
  Alcotest.(check (float 0.)) "unknown slow" 0. s

let test_slo_config_validation () =
  let invalid f = Alcotest.check_raises "rejects" (Invalid_argument "") f in
  let check_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  ignore invalid;
  check_invalid (fun () -> Obs_slo.class_config ~cls:"x" ~threshold:0. ());
  check_invalid (fun () ->
      Obs_slo.class_config ~cls:"x" ~threshold:1. ~budget:0. ());
  check_invalid (fun () ->
      Obs_slo.class_config ~cls:"x" ~threshold:1. ~budget:1.5 ());
  check_invalid (fun () ->
      Obs_slo.class_config ~cls:"x" ~threshold:1. ~fast_window:60.
        ~slow_window:60. ());
  check_invalid (fun () ->
      Obs_slo.class_config ~cls:"x" ~threshold:1. ~burn_threshold:0. ());
  check_invalid (fun () -> Obs_slo.create ~classes:[] ())

let test_slo_alert_event () =
  let a =
    {
      Obs_slo.a_cls = "lat";
      a_fired = true;
      a_burn_fast = 3.5;
      a_burn_slow = 2.5;
      a_at = 7.;
    }
  in
  match Obs_slo.alert_to_event a with
  | Obs_sink.Slo_alert { slo; fired; burn_fast; burn_slow; at } ->
    Alcotest.(check string) "slo" "lat" slo;
    Alcotest.(check bool) "fired" true fired;
    Alcotest.(check (float 0.)) "fast" 3.5 burn_fast;
    Alcotest.(check (float 0.)) "slow" 2.5 burn_slow;
    Alcotest.(check (float 0.)) "at" 7. at
  | _ -> Alcotest.fail "expected Slo_alert"

(* ---------- Obs_wall ---------- *)

let test_wall_disabled_is_dead () =
  let p = Obs_wall.probe ~enabled:false () in
  Alcotest.(check bool) "disabled" false (Obs_wall.enabled p);
  Obs_wall.start p;
  ignore (Sys.opaque_identity (List.init 1000 Fun.id));
  let s = Obs_wall.stop p in
  Alcotest.(check bool) "zero sample" true (s = Obs_wall.zero)

let test_wall_measures_allocation () =
  let (xs, s) =
    Obs_wall.time (fun () -> Sys.opaque_identity (List.init 200_000 Fun.id))
  in
  Alcotest.(check int) "result passed through" 200_000 (List.length xs);
  Alcotest.(check bool) "wall nonneg" true (s.Obs_wall.wall_s >= 0.);
  Alcotest.(check bool) "allocation observed" true
    (Obs_wall.alloc_words s > 0.);
  Alcotest.(check bool) "rate consistent" true
    (s.Obs_wall.wall_s = 0. || Obs_wall.alloc_rate s > 0.);
  (* stop without start is zero; add is fieldwise. *)
  let p = Obs_wall.probe () in
  Alcotest.(check bool) "stop without start" true (Obs_wall.stop p = Obs_wall.zero);
  let two = Obs_wall.add s s in
  Alcotest.(check (float 1e-12)) "add wall" (2. *. s.Obs_wall.wall_s)
    two.Obs_wall.wall_s;
  Alcotest.(check (float 1e-3)) "add alloc"
    (2. *. Obs_wall.alloc_words s)
    (Obs_wall.alloc_words two)

(* ---------- Obs_json round-trip fuzzing ---------- *)

(* Scalars whose compact rendering parses back to the identical value:
   ints, bools, null, printable strings, and dyadic floats with few
   significant digits (the printer uses %.12g; sixteenths stay exact). *)
let gen_exact_doc =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Obs_json.Null;
        map (fun b -> Obs_json.Bool b) bool;
        map (fun n -> Obs_json.Int n) (int_range (-1_000_000_000) 1_000_000_000);
        map
          (fun m -> Obs_json.Float (float_of_int m /. 16.))
          (int_range (-10_000) 10_000);
        map (fun s -> Obs_json.Str s) (string_size ~gen:printable (0 -- 12));
      ]
  in
  sized
    (fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun xs -> Obs_json.List xs)
                   (list_size (0 -- 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Obs_json.Obj kvs)
                   (list_size (0 -- 4)
                      (pair (string_size ~gen:printable (0 -- 8)) (self (n / 2))))
               );
             ]))

let arb_exact_doc = QCheck.make ~print:Obs_json.to_string gen_exact_doc

let prop_roundtrip_id =
  QCheck.Test.make ~name:"print . parse = id on representable documents"
    ~count:300 arb_exact_doc (fun d ->
      match Obs_json.of_string (Obs_json.to_string d) with
      | Ok d' -> d' = d
      | Error e -> QCheck.Test.fail_reportf "own output unparseable: %s" e)

let prop_pretty_agrees =
  QCheck.Test.make ~name:"pretty rendering parses to the same value"
    ~count:150 arb_exact_doc (fun d ->
      match Obs_json.of_string (Obs_json.to_string_pretty d) with
      | Ok d' -> d' = d
      | Error e -> QCheck.Test.fail_reportf "pretty output unparseable: %s" e)

(* Arbitrary floats (non-finite included) need not round-trip exactly,
   but one print/parse pass must reach a fixed point. *)
let prop_print_idempotent =
  QCheck.Test.make ~name:"print . parse . print is a fixed point" ~count:300
    QCheck.(map (fun f -> Obs_json.Float f) float)
    (fun d ->
      let s = Obs_json.to_string d in
      match Obs_json.of_string s with
      | Ok d' -> Obs_json.to_string d' = s
      | Error e -> QCheck.Test.fail_reportf "own output unparseable: %s" e)

let prop_parser_total_on_garbage =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
    QCheck.(string_of_size Gen.(0 -- 40))
    (fun s -> match Obs_json.of_string s with Ok _ | Error _ -> true)

let prop_parser_total_on_truncation =
  QCheck.Test.make ~name:"parser never raises on truncated documents"
    ~count:300
    QCheck.(pair arb_exact_doc (0 -- 1000))
    (fun (d, cut) ->
      let s = Obs_json.to_string d in
      let prefix = String.sub s 0 (min cut (String.length s)) in
      match Obs_json.of_string prefix with Ok _ | Error _ -> true)

let suites =
  [
    ( "span",
      [
        Alcotest.test_case "tree well-formed" `Quick test_span_tree_well_formed;
        Alcotest.test_case "tree violations" `Quick test_span_tree_violations;
        Alcotest.test_case "ops trace exempt" `Quick test_span_ops_trace_exempt;
        Alcotest.test_case "sink and limit" `Quick test_span_sink_and_limit;
        Alcotest.test_case "chrome round-trip" `Quick test_span_chrome_roundtrip;
        Alcotest.test_case "server integration" `Quick
          test_span_server_integration;
      ] );
    ( "window",
      [
        Alcotest.test_case "sliding counter" `Quick test_window_counter;
        Alcotest.test_case "rolling histogram" `Quick test_window_hist;
      ] );
    ( "slo",
      [
        Alcotest.test_case "fire and resolve" `Quick test_slo_fire_and_resolve;
        Alcotest.test_case "latency and unknown class" `Quick
          test_slo_latency_and_unknown;
        Alcotest.test_case "config validation" `Quick test_slo_config_validation;
        Alcotest.test_case "alert to event" `Quick test_slo_alert_event;
      ] );
    ( "wall",
      [
        Alcotest.test_case "disabled probe is dead" `Quick
          test_wall_disabled_is_dead;
        Alcotest.test_case "measures allocation" `Quick
          test_wall_measures_allocation;
      ] );
    ( "json-fuzz",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_roundtrip_id;
          prop_pretty_agrees;
          prop_print_idempotent;
          prop_parser_total_on_garbage;
          prop_parser_total_on_truncation;
        ] );
  ]
