(* Tests for the multi-tenant serving stack: tenant token buckets and
   quotas, the hash-consed program cache, SLO-aware admission (the
   weighted-fair dispatcher, the degradation ladder, and the shed-victim
   invariant), the pure autoscaling controller, and the tenant server's
   acceptance criterion — every completion bitwise identical to running
   the request alone, through preemption, scaling, and injected device
   kills. *)

let t = Alcotest.test_case

(* ---------- fixtures ---------- *)

let shapes = Tenant_load.element_shapes
let compiled0 = lazy (Autobatch.compile ~input_shapes:shapes (Tenant_load.family_program ~k:0))
let digest0 = lazy (Prog_cache.digest ~input_shapes:shapes (Tenant_load.family_program ~k:0))

let mk_tenant ?slo ?rate ?burst ?quota id =
  Tenant.make ?slo ?rate ?burst ?quota ~id ~name:(Printf.sprintf "t%d" id) ()

(* An admission item on the family program: [n] is the loop trip count
   (the service length), [width] the lanes it occupies. *)
let mk_item ?(tenant = mk_tenant 0) ?(arrival = 0.) ?(width = 1) ~id ~n () =
  let rows v = Tensor.stack_rows (List.init width (fun _ -> Tensor.scalar v)) in
  let xs =
    Tensor.stack_rows
      (List.init width (fun j -> Tensor.scalar (0.3 +. (0.01 *. float_of_int j))))
  in
  let request =
    Request.make ~id ~member:(id * 8) ~arrival ~cost_hint:(float_of_int n)
      ~program:(Lazy.force compiled0)
      ~inputs:[ rows (float_of_int n); xs; rows 0. ]
      ()
  in
  { Admission.tenant; request; digest = Lazy.force digest0 }

let item_ids adm =
  let acc = ref [] in
  Admission.iter adm (fun it -> acc := it.Admission.request.Request.id :: !acc);
  List.rev !acc

(* ---------- tenant token buckets ---------- *)

let test_bucket_refill_and_deny () =
  let tn = mk_tenant ~rate:2. ~burst:2. 1 in
  Alcotest.(check bool) "first token" true (Tenant.admit tn ~now:0. ~cost:1.);
  Alcotest.(check bool) "second token" true (Tenant.admit tn ~now:0. ~cost:1.);
  Alcotest.(check bool) "bucket empty" false (Tenant.admit tn ~now:0. ~cost:1.);
  Alcotest.(check int) "throttle counted" 1 tn.Tenant.throttled;
  (* Half a second refills one token at rate 2. *)
  Alcotest.(check bool) "refilled" true (Tenant.admit tn ~now:0.5 ~cost:1.);
  Alcotest.(check bool) "but only one" false (Tenant.admit tn ~now:0.5 ~cost:1.);
  (* The bucket clamps at burst: a long idle stretch is not a war chest. *)
  Alcotest.(check (float 1e-12))
    "clamped at burst" 2.
    (Tenant.tokens_available tn ~now:100.)

let test_quota_exhaustion () =
  let tn = mk_tenant ~quota:3. 2 in
  Alcotest.(check bool) "within quota" true (Tenant.admit tn ~now:0. ~cost:2.);
  Alcotest.(check bool) "still within" true (Tenant.admit tn ~now:0. ~cost:1.);
  Alcotest.(check bool) "over quota" false (Tenant.admit tn ~now:10. ~cost:0.5);
  Alcotest.(check (float 1e-12)) "usage charged" 3. tn.Tenant.cost_used

(* ---------- program cache ---------- *)

let test_digest_structural () =
  (* Hash-consed identity: two independent builds of the same family
     member digest equal; different members differ. *)
  let d k = Prog_cache.digest ~input_shapes:shapes (Tenant_load.family_program ~k) in
  Alcotest.(check bool) "same structure, same digest" true (Int64.equal (d 0) (d 0));
  Alcotest.(check bool) "k=1 distinct" false (Int64.equal (d 0) (d 1));
  Alcotest.(check bool) "k=2 distinct" false (Int64.equal (d 1) (d 2));
  Alcotest.(check bool) "shapes matter" false
    (Int64.equal (d 0)
       (Prog_cache.digest ~input_shapes:[ [||]; [||]; [| 2 |] ]
          (Tenant_load.family_program ~k:0)))

let test_cache_hit_and_identity () =
  let cache = Prog_cache.create ~capacity:4 () in
  let p = Tenant_load.family_program ~k:3 in
  let c1, o1 = Prog_cache.find_or_compile cache ~input_shapes:shapes p in
  let c2, o2 = Prog_cache.find_or_compile cache ~input_shapes:shapes p in
  Alcotest.(check bool) "first is a miss" true (o1 = `Miss);
  Alcotest.(check bool) "second is a hit" true (o2 = `Hit);
  Alcotest.(check bool) "physically same artifact" true (c1 == c2);
  Alcotest.(check int) "one hit" 1 (Prog_cache.hits cache);
  Alcotest.(check int) "one miss" 1 (Prog_cache.misses cache);
  Alcotest.(check (float 1e-12)) "hit rate" 0.5 (Prog_cache.hit_rate cache)

let test_cache_lru_eviction () =
  let cache = Prog_cache.create ~capacity:2 () in
  let p k = Tenant_load.family_program ~k in
  let d k = Prog_cache.digest ~input_shapes:shapes (p k) in
  ignore (Prog_cache.find_or_compile cache ~input_shapes:shapes (p 0));
  ignore (Prog_cache.find_or_compile cache ~input_shapes:shapes (p 1));
  (* Touch 0 so 1 becomes least-recently-used, then insert 2. *)
  ignore (Prog_cache.find_or_compile cache ~input_shapes:shapes (p 0));
  ignore (Prog_cache.find_or_compile cache ~input_shapes:shapes (p 2));
  Alcotest.(check int) "one eviction" 1 (Prog_cache.evictions cache);
  Alcotest.(check bool) "LRU entry gone" true (Prog_cache.find cache (d 1) = None);
  Alcotest.(check bool) "recent entry kept" true (Prog_cache.find cache (d 0) <> None);
  Alcotest.(check bool) "new entry kept" true (Prog_cache.find cache (d 2) <> None)

(* ---------- admission: weighted-fair dispatch ---------- *)

let always _ = true

let test_wfq_shares () =
  let adm =
    Admission.create ~config:{ Admission.default with depth = 12 } ()
  in
  let id = ref 0 in
  List.iter
    (fun slo ->
      for _ = 1 to 8 do
        incr id;
        match Admission.offer adm (mk_item ~tenant:(mk_tenant ~slo !id) ~id:!id ~n:4 ()) with
        | `Admitted -> ()
        | _ -> Alcotest.fail "offer refused under Normal"
      done)
    [ Tenant.Latency_bound; Tenant.Throughput; Tenant.Best_effort ];
  (* One full credit round at weights 6:3:1. *)
  let popped =
    List.init 10 (fun _ ->
        match Admission.pop adm ~fits:always with
        | Some it -> Admission.item_rank it
        | None -> Alcotest.fail "pop ran dry")
  in
  Alcotest.(check (list int))
    "weighted round is 6 latency, 3 throughput, 1 best-effort"
    [ 0; 0; 0; 0; 0; 0; 1; 1; 1; 2 ]
    popped;
  (* Everything eventually drains; nothing is lost to the weighting. *)
  let rec drain acc =
    match Admission.pop adm ~fits:always with
    | Some _ -> drain (acc + 1)
    | None -> acc
  in
  Alcotest.(check int) "remaining items all dispatch" 14 (drain 0)

let test_pop_skips_nonfitting_head () =
  let adm = Admission.create () in
  let offer it =
    match Admission.offer adm it with
    | `Admitted -> ()
    | _ -> Alcotest.fail "offer refused"
  in
  offer (mk_item ~id:1 ~n:4 ~width:4 ());
  offer (mk_item ~id:2 ~n:4 ~width:1 ());
  (* A 2-lane server must get id 2: the wide head cannot wedge it. *)
  (match Admission.pop adm ~fits:(fun it -> Request.width it.Admission.request <= 2) with
  | Some it -> Alcotest.(check int) "fitting item behind head" 2 it.Admission.request.Request.id
  | None -> Alcotest.fail "fitting item not found");
  (* Arrival order is otherwise preserved. *)
  match Admission.pop adm ~fits:always with
  | Some it -> Alcotest.(check int) "head dispatches next" 1 it.Admission.request.Request.id
  | None -> Alcotest.fail "head lost"

let test_fifo_is_slo_blind () =
  let adm = Admission.create ~config:(Admission.fifo ~depth:3 ()) () in
  let offer it = Admission.offer adm it in
  Alcotest.(check bool) "be admitted" true
    (offer (mk_item ~tenant:(mk_tenant ~slo:Tenant.Best_effort 1) ~id:1 ~n:4 ()) = `Admitted);
  Alcotest.(check bool) "lb admitted" true
    (offer (mk_item ~tenant:(mk_tenant ~slo:Tenant.Latency_bound 2) ~id:2 ~n:4 ()) = `Admitted);
  Alcotest.(check bool) "be admitted" true
    (offer (mk_item ~tenant:(mk_tenant ~slo:Tenant.Best_effort 3) ~id:3 ~n:4 ()) = `Admitted);
  Alcotest.(check bool) "full queue rejects even latency-bound" true
    (offer (mk_item ~tenant:(mk_tenant ~slo:Tenant.Latency_bound 4) ~id:4 ~n:4 ())
     = `Rejected Admission.Queue_full);
  let order =
    List.init 3 (fun _ ->
        match Admission.pop adm ~fits:always with
        | Some it -> it.Admission.request.Request.id
        | None -> Alcotest.fail "fifo ran dry")
  in
  Alcotest.(check (list int)) "strict arrival order, class-blind" [ 1; 2; 3 ] order

(* ---------- admission: degradation ladder ---------- *)

let test_ladder_climb_and_hysteresis () =
  (* depth 4 -> capacity 12; up-thresholds at 0.75, ~0.833, ~0.917. *)
  let adm =
    Admission.create ~config:{ Admission.default with depth = 4 } ()
  in
  let lb i = mk_item ~tenant:(mk_tenant ~slo:Tenant.Latency_bound i) ~id:i ~n:4 () in
  let fill upto =
    for i = Admission.length adm + 1 to upto do
      ignore (Admission.offer adm (lb i))
    done
  in
  fill 8;
  Alcotest.(check string) "normal at 8/12" "normal"
    (Admission.level_name (Admission.level adm));
  fill 9;
  Alcotest.(check string) "first rung at 9/12" "shed-best-effort"
    (Admission.level_name (Admission.level adm));
  fill 10;
  Alcotest.(check string) "second rung at 10/12" "cap-width"
    (Admission.level_name (Admission.level adm));
  fill 11;
  Alcotest.(check string) "top rung at 11/12" "reject-new"
    (Admission.level_name (Admission.level adm));
  (match Admission.offer adm (lb 12) with
  | `Rejected (Admission.Overloaded Admission.Reject_new) -> ()
  | _ -> Alcotest.fail "reject-new must refuse everything");
  (* Descend with the hysteresis band: still capped at 7/12, and still
     shedding best-effort at 6/12 — occupancies that were Normal on the
     way up. *)
  let pop_n n = for _ = 1 to n do ignore (Admission.pop adm ~fits:always) done in
  pop_n 4;
  Alcotest.(check string) "still cap-width at 7/12" "cap-width"
    (Admission.level_name (Admission.level adm));
  pop_n 1;
  Alcotest.(check string) "still shedding at 6/12" "shed-best-effort"
    (Admission.level_name (Admission.level adm));
  pop_n 1;
  Alcotest.(check string) "normal again at 5/12" "normal"
    (Admission.level_name (Admission.level adm))

let test_ladder_refusals_by_class () =
  (* Hold the ladder at shed-best-effort and check who gets in. *)
  let adm =
    Admission.create ~config:{ Admission.default with depth = 4; cap_width = 1 } ()
  in
  for i = 1 to 9 do
    ignore (Admission.offer adm (mk_item ~tenant:(mk_tenant ~slo:Tenant.Throughput i) ~id:i ~n:4 ()))
  done;
  Alcotest.(check string) "at first rung" "shed-best-effort"
    (Admission.level_name (Admission.level adm));
  (match Admission.offer adm (mk_item ~tenant:(mk_tenant ~slo:Tenant.Best_effort 90) ~id:90 ~n:4 ()) with
  | `Rejected (Admission.Overloaded Admission.Shed_best_effort) -> ()
  | _ -> Alcotest.fail "best-effort must be refused at the first rung");
  match Admission.offer adm (mk_item ~tenant:(mk_tenant ~slo:Tenant.Latency_bound 91) ~id:91 ~n:4 ()) with
  | `Admitted -> ()
  | _ -> Alcotest.fail "latency-bound must still be admitted at the first rung"

(* ---------- admission: shed-victim property ---------- *)

(* With the ladder parked far away (high_water 2.0), a full buffer takes
   the drop-oldest path. The pinned invariant: a shed never drops a
   request while a strictly weaker one is queued, and never victimizes a
   class stronger than the offer. *)
let prop_shed_victim =
  QCheck.Test.make ~name:"shed never drops while a weaker item is queued"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 2))
    (fun ranks ->
      let adm =
        Admission.create
          ~config:
            { Admission.default with depth = 3; high_water = 2.0; low_water = 1.0 }
          ()
      in
      let ok = ref true in
      List.iteri
        (fun i rank ->
          let it =
            mk_item ~tenant:(mk_tenant ~slo:(Tenant.of_rank rank) i) ~id:i ~n:4 ()
          in
          match Admission.offer adm it with
          | `Admitted | `Rejected _ -> ()
          | `Shed victim ->
            let vr = Admission.item_rank victim in
            (* No strictly weaker item may remain queued... *)
            Admission.iter adm (fun q -> if Admission.item_rank q > vr then ok := false);
            (* ...and the victim is never stronger than the offer. *)
            if vr < rank then ok := false)
        ranks;
      !ok)

(* Same offer/pop schedule on two independent instances: identical
   admissions, identical dispatch order. Replays under --seed depend on
   exactly this. *)
let prop_admission_deterministic =
  QCheck.Test.make ~name:"admission replays deterministically" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 2) bool))
    (fun ops ->
      let trace () =
        let adm =
          Admission.create ~config:{ Admission.default with depth = 4 } ()
        in
        let log = ref [] in
        List.iteri
          (fun i (rank, do_pop) ->
            if do_pop then
              match Admission.pop adm ~fits:always with
              | Some it -> log := ("pop", it.Admission.request.Request.id) :: !log
              | None -> log := ("pop", -1) :: !log
            else begin
              let it =
                mk_item ~tenant:(mk_tenant ~slo:(Tenant.of_rank rank) i) ~id:i ~n:4 ()
              in
              match Admission.offer adm it with
              | `Admitted -> log := ("adm", i) :: !log
              | `Shed v -> log := ("shed", v.Admission.request.Request.id) :: !log
              | `Rejected _ -> log := ("rej", i) :: !log
            end)
          ops;
        (!log, item_ids adm)
      in
      trace () = trace ())

(* ---------- pool controller ---------- *)

let test_pool_decide () =
  let cfg =
    { Pool.min_shards = 1; max_shards = 4; grow_backlog = 1.0; shrink_util = 0.25; cooldown = 4 }
  in
  let sig_ ?(backlog = 0) ?(active = 1) ?(draining = 0) ?(live = 0) () =
    { Pool.backlog; active; draining; lanes_per_shard = 8; live_lanes = live }
  in
  let d ?(since = 99) s = Pool.decide cfg ~rounds_since_action:since s in
  Alcotest.(check string) "cooldown holds" "hold"
    (Pool.action_name (d ~since:3 (sig_ ~backlog:100 ())));
  Alcotest.(check string) "no capacity, any backlog grows" "grow"
    (Pool.action_name (d (sig_ ~backlog:1 ~active:0 ())));
  Alcotest.(check string) "backlog pressure grows" "grow"
    (Pool.action_name (d (sig_ ~backlog:9 ~active:1 ~live:8 ())));
  Alcotest.(check string) "at max_shards holds" "hold"
    (Pool.action_name
       (Pool.decide cfg ~rounds_since_action:99
          { Pool.backlog = 100; active = 3; draining = 1; lanes_per_shard = 8; live_lanes = 24 }));
  Alcotest.(check string) "idle fleet shrinks" "shrink"
    (Pool.action_name (d (sig_ ~active:2 ~live:1 ())));
  Alcotest.(check string) "min_shards holds" "hold"
    (Pool.action_name (d (sig_ ~active:1 ~live:0 ())));
  Alcotest.(check string) "draining shard blocks another shrink" "hold"
    (Pool.action_name (d (sig_ ~active:2 ~draining:1 ~live:1 ())));
  (* The no-bounce guard: survivors must absorb live + backlog. *)
  Alcotest.(check string) "shrink would bounce, holds" "hold"
    (Pool.action_name (d (sig_ ~active:2 ~live:3 ~backlog:6 ())));
  Alcotest.(check string) "survivors can absorb, shrinks" "shrink"
    (Pool.action_name (d (sig_ ~active:2 ~live:3 ~backlog:4 ())))

(* ---------- tenant server: bitwise acceptance ---------- *)

let default_mesh n = Mesh.gpu_pod ~n ()

let check_all_solo name (st : Tenant_server.stats) =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: request %d bitwise vs solo" name
           c.Tenant_server.c_item.Admission.request.Request.id)
        true (Tenant_load.matches_solo c))
    st.Tenant_server.completions

let test_server_preemption_bitwise () =
  let be = mk_tenant ~slo:Tenant.Best_effort 0 in
  let lb = mk_tenant ~slo:Tenant.Latency_bound 1 in
  let config =
    {
      (Tenant_server.default_config ~mesh:(default_mesh 1)) with
      Tenant_server.lanes_per_shard = 2;
      checkpoint_interval = 4;
    }
  in
  let st =
    Tenant_server.run ~config
      (Tenant_server.source_of_list
         [
           mk_item ~tenant:be ~id:0 ~width:2 ~n:60 ();
           mk_item ~tenant:lb ~id:1 ~arrival:1e-7 ~width:1 ~n:8 ();
         ])
  in
  Alcotest.(check int) "one preemption" 1 st.Tenant_server.preemptions;
  Alcotest.(check int) "one resume" 1 st.Tenant_server.resumes;
  Alcotest.(check int) "both completed" 2
    (List.length st.Tenant_server.completions);
  let by_id id =
    List.find
      (fun c -> c.Tenant_server.c_item.Admission.request.Request.id = id)
      st.Tenant_server.completions
  in
  Alcotest.(check int) "victim was parked once" 1 (by_id 0).Tenant_server.c_preempted;
  Alcotest.(check bool) "latency-bound finished first" true
    ((by_id 1).Tenant_server.c_finished < (by_id 0).Tenant_server.c_finished);
  check_all_solo "preempt" st

let kill_scenario () =
  let config =
    {
      (Tenant_server.default_config ~mesh:(default_mesh 1)) with
      Tenant_server.lanes_per_shard = 4;
      checkpoint_interval = 4;
      faults = [ { Fault.superstep = 10; device = 0; kind = Fault.Device_kill } ];
    }
  in
  Tenant_server.run ~config
    (Tenant_server.source_of_list
       (List.init 6 (fun i -> mk_item ~tenant:(mk_tenant 0) ~id:i ~n:(12 + i) ())))

let test_server_kill_recovers_bitwise () =
  let st = kill_scenario () in
  Alcotest.(check int) "one restore" 1 st.Tenant_server.restores;
  Alcotest.(check bool) "checkpoints taken" true (st.Tenant_server.checkpoints > 0);
  Alcotest.(check int) "nothing lost to the kill" 6
    (List.length st.Tenant_server.completions);
  Alcotest.(check bool) "re-execution was paid for" true
    (st.Tenant_server.wasted_rounds > 0);
  check_all_solo "kill" st

let test_server_kill_replay_deterministic () =
  let fingerprint (st : Tenant_server.stats) =
    ( st.Tenant_server.rounds,
      List.map
        (fun c ->
          ( c.Tenant_server.c_item.Admission.request.Request.id,
            Int64.bits_of_float c.Tenant_server.c_finished,
            c.Tenant_server.c_shard ))
        st.Tenant_server.completions )
  in
  Alcotest.(check bool) "same trace, same run" true
    (fingerprint (kill_scenario ()) = fingerprint (kill_scenario ()))

(* ---------- the load harness under --seed ---------- *)

let test_load_deterministic_under_seed () =
  let run () =
    Tenant_load.run ~seed:0xBEEFL ~n_requests:250 ~n_tenants:8 ~n_programs:4
      ~mesh_size:2 ~lanes_per_shard:4 ()
  in
  let a = Obs_json.to_string (Tenant_load.to_json (run ())) in
  let b = Obs_json.to_string (Tenant_load.to_json (run ())) in
  Alcotest.(check bool) "same seed, byte-identical readout" true (a = b);
  let c =
    Obs_json.to_string
      (Tenant_load.to_json
         (Tenant_load.run ~seed:0xFACEL ~n_requests:250 ~n_tenants:8
            ~n_programs:4 ~mesh_size:2 ~lanes_per_shard:4 ()))
  in
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

let test_load_verifies_bitwise () =
  let r =
    Tenant_load.run ~seed:0x7E47L ~n_requests:200 ~n_tenants:6 ~n_programs:3
      ~mesh_size:2 ~lanes_per_shard:4 ~baseline:false ()
  in
  Alcotest.(check int) "no mismatches" 0 r.Tenant_load.mismatches;
  Alcotest.(check bool) "completions verified" true (r.Tenant_load.verified > 0)

(* ---------- suites ---------- *)

let suites =
  [
    ( "tenant-bucket",
      [
        t "refill and deny" `Quick test_bucket_refill_and_deny;
        t "quota exhaustion" `Quick test_quota_exhaustion;
      ] );
    ( "tenant-cache",
      [
        t "digest is structural" `Quick test_digest_structural;
        t "hit returns the same artifact" `Quick test_cache_hit_and_identity;
        t "LRU eviction" `Quick test_cache_lru_eviction;
      ] );
    ( "tenant-admission",
      [
        t "weighted-fair shares" `Quick test_wfq_shares;
        t "pop skips non-fitting head" `Quick test_pop_skips_nonfitting_head;
        t "fifo baseline is SLO-blind" `Quick test_fifo_is_slo_blind;
        t "ladder climbs and descends with hysteresis" `Quick
          test_ladder_climb_and_hysteresis;
        t "ladder refusals by class" `Quick test_ladder_refusals_by_class;
        QCheck_alcotest.to_alcotest prop_shed_victim;
        QCheck_alcotest.to_alcotest prop_admission_deterministic;
      ] );
    ("tenant-pool", [ t "decide" `Quick test_pool_decide ]);
    ( "tenant-server",
      [
        t "preemption is bitwise invisible" `Quick test_server_preemption_bitwise;
        t "device kill recovers bitwise" `Quick test_server_kill_recovers_bitwise;
        t "kill replay is deterministic" `Quick test_server_kill_replay_deterministic;
      ] );
    ( "tenant-load",
      [
        t "deterministic under --seed" `Quick test_load_deterministic_under_seed;
        t "completions verify against solo" `Quick test_load_verifies_bitwise;
      ] );
  ]
