(* Tests for the developer tooling: DOT export, per-block profiling, and
   source-file loading — plus structural invariants of the stack IR
   checked over the random-program generator. *)

let t = Alcotest.test_case

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let fib_compiled =
  Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.fib

let test_dot_cfg () =
  let dot = Dot.cfg_to_dot fib_compiled.Autobatch.cfg in
  Alcotest.(check bool) "digraph" true (contains dot "digraph cfg");
  Alcotest.(check bool) "cluster per function" true (contains dot "cluster_0");
  Alcotest.(check bool) "branch labels" true (contains dot "label=\"true\"");
  Alcotest.(check bool) "call edge" true (contains dot "style=dashed");
  (* Balanced braces. *)
  let opens = String.fold_left (fun n c -> if c = '{' then n + 1 else n) 0 dot in
  let closes = String.fold_left (fun n c -> if c = '}' then n + 1 else n) 0 dot in
  Alcotest.(check int) "brace balance" opens closes

let test_dot_stack () =
  let dot = Dot.stack_to_dot fib_compiled.Autobatch.stack in
  Alcotest.(check bool) "digraph" true (contains dot "digraph stack");
  Alcotest.(check bool) "halt node" true (contains dot "halt");
  Alcotest.(check bool) "call edge" true (contains dot "label=\"call\"");
  Alcotest.(check bool) "push shown" true (contains dot "push fib/n")

let test_block_profile () =
  let ins = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some ins } in
  ignore (Autobatch.run_pc ~config fib_compiled ~batch:[ Tensor.of_list [ 8.; 9. ] ]);
  let stats = Instrument.block_stats ins in
  Alcotest.(check bool) "profile populated" true (List.length stats > 0);
  (* Totals agree with the aggregate counters. *)
  let execs = List.fold_left (fun acc (_, e, _) -> acc + e) 0 stats in
  Alcotest.(check int) "execs sum to blocks" (Instrument.blocks_executed ins) execs;
  (* Sorted by executions descending. *)
  let rec sorted = function
    | (_, a, _) :: ((_, b, _) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted stats);
  (* Indices are valid blocks of the merged program. *)
  let nb = Array.length fib_compiled.Autobatch.stack.Stack_ir.blocks in
  List.iter
    (fun (b, _, active) ->
      Alcotest.(check bool) "block in range" true (b >= 0 && b < nb);
      Alcotest.(check bool) "active positive" true (active > 0))
    stats

let test_parse_file () =
  let path = Filename.temp_file "autobatch" ".ab" in
  let oc = open_out path in
  output_string oc "def main(x) { return x * x; }";
  close_out oc;
  (match Parser.parse_file path with
  | Ok p ->
    let out = Interp.run (Prim.standard ()) p ~member:0 ~args:[ Tensor.scalar 7. ] in
    Alcotest.(check (float 0.)) "square" 49. (Tensor.item (List.hd out))
  | Error e -> Alcotest.failf "parse_file: %s" (Parser.string_of_error e));
  Sys.remove path

let test_primes_example_program () =
  (* The shipped .ab example must parse, validate, and compute pi(n). *)
  let path = "../../../examples/programs/primes.ab" in
  let path = if Sys.file_exists path then path else "examples/programs/primes.ab" in
  match Parser.parse_file path with
  | Error e -> Alcotest.failf "primes.ab: %s" (Parser.string_of_error e)
  | Ok p ->
    let reg = Prim.standard () in
    Validate.check_exn reg p;
    let compiled = Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar ] p in
    let out =
      Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ 10.; 50.; 100. ] ]
    in
    Alcotest.(check (list (float 0.))) "pi(10), pi(50), pi(100)" [ 4.; 15.; 25. ]
      (Tensor.to_flat_list (List.hd out))

(* Structural invariants of the stack lowering, fuzzed. *)

let stack_invariants (prog : Lang.program) =
  let reg = Prim.standard () in
  match Validate.check_program reg prog with
  | Error _ -> true (* generator guarantees validity; checked elsewhere *)
  | Ok () ->
    let compiled =
      Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar; Shape.scalar ] prog
    in
    let sp = compiled.Autobatch.stack in
    let nb = Array.length sp.Stack_ir.blocks in
    Array.iteri
      (fun i (b : Stack_ir.block) ->
        (* 1. Every push/pop targets a Stacked-class variable. *)
        List.iter
          (fun op ->
            match op with
            | Stack_ir.Spush v | Stack_ir.Spop v ->
              if not (Var_class.equal (Stack_ir.class_of sp v) Var_class.Stacked)
              then
                QCheck.Test.fail_reportf "block %d: stack op on %s (%s)" i v
                  (Var_class.to_string (Stack_ir.class_of sp v))
            | Stack_ir.Sprim _ | Stack_ir.Sconst _ | Stack_ir.Smov _ -> ())
          b.Stack_ir.ops;
        (* 2. Terminator targets are in range; pushjump returns to the
           immediately following block, whose pops mirror the pushes. *)
        match b.Stack_ir.term with
        | Stack_ir.Sjump j ->
          if j < 0 || j >= nb then QCheck.Test.fail_reportf "jump out of range"
        | Stack_ir.Sbranch { if_true; if_false; _ } ->
          if if_true < 0 || if_true >= nb || if_false < 0 || if_false >= nb then
            QCheck.Test.fail_reportf "branch out of range"
        | Stack_ir.Spushjump { ret; entry } ->
          if ret <> i + 1 then
            QCheck.Test.fail_reportf "pushjump ret %d is not the next block" ret;
          if entry < 0 || entry >= nb then
            QCheck.Test.fail_reportf "pushjump entry out of range";
          let pushes =
            List.filter_map
              (function Stack_ir.Spush v -> Some v | _ -> None)
              b.Stack_ir.ops
            |> List.sort compare
          in
          let pops =
            List.filter_map
              (function Stack_ir.Spop v -> Some v | _ -> None)
              sp.Stack_ir.blocks.(ret).Stack_ir.ops
            |> List.sort compare
          in
          if pushes <> pops then
            QCheck.Test.fail_reportf
              "block %d pushes [%s] but continuation pops [%s]" i
              (String.concat "," pushes) (String.concat "," pops)
        | Stack_ir.Spushbranch { ret; if_true; if_false; _ } ->
          (* Only the fusion pass emits this; an unfused compile must not. *)
          if ret < 0 || ret >= nb || if_true < 0 || if_true >= nb
             || if_false < 0 || if_false >= nb
          then QCheck.Test.fail_reportf "pushbranch target out of range"
        | Stack_ir.Sreturn -> ())
      sp.Stack_ir.blocks;
    true

let prop_stack_invariants =
  QCheck.Test.make ~name:"stack IR structural invariants" ~count:80
    Test_random_programs.arb_program stack_invariants

let suites =
  [
    ( "tools",
      [
        t "dot export (cfg)" `Quick test_dot_cfg;
        t "dot export (stack)" `Quick test_dot_stack;
        t "per-block profile" `Quick test_block_profile;
        t "parse_file" `Quick test_parse_file;
        t "primes.ab example" `Quick test_primes_example_program;
        QCheck_alcotest.to_alcotest prop_stack_invariants;
      ] );
  ]
