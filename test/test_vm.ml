(* Unit tests for the runtime layer: scheduling, instrumentation, stacked
   storage, and VM-specific behaviours (error handling, input immutability,
   cost accounting hooks). *)

let t = Alcotest.test_case

(* ---------- Sched ---------- *)

let test_sched_earliest () =
  Alcotest.(check (option int)) "first nonzero" (Some 1)
    (Sched_policy.pick Sched_policy.Earliest ~last:5 ~counts:[| 0; 3; 1 |]);
  Alcotest.(check (option int)) "none" None
    (Sched_policy.pick Sched_policy.Earliest ~last:0 ~counts:[| 0; 0 |])

let test_sched_most_active () =
  Alcotest.(check (option int)) "argmax" (Some 1)
    (Sched_policy.pick Sched_policy.Most_active ~last:0 ~counts:[| 2; 5; 3 |]);
  Alcotest.(check (option int)) "tie -> earliest" (Some 0)
    (Sched_policy.pick Sched_policy.Most_active ~last:0 ~counts:[| 5; 5; 3 |]);
  Alcotest.(check (option int)) "none" None
    (Sched_policy.pick Sched_policy.Most_active ~last:0 ~counts:[| 0; 0; 0 |])

let test_sched_round_robin () =
  let counts = [| 1; 1; 0; 1 |] in
  Alcotest.(check (option int)) "after 0 -> 1" (Some 1)
    (Sched_policy.pick Sched_policy.Round_robin ~last:0 ~counts);
  Alcotest.(check (option int)) "after 1 skips 2 -> 3" (Some 3)
    (Sched_policy.pick Sched_policy.Round_robin ~last:1 ~counts);
  Alcotest.(check (option int)) "wraps" (Some 0)
    (Sched_policy.pick Sched_policy.Round_robin ~last:3 ~counts);
  Alcotest.(check (option int)) "initial -1" (Some 0)
    (Sched_policy.pick Sched_policy.Round_robin ~last:(-1) ~counts)

let prop_sched_picks_nonzero =
  QCheck.Test.make ~name:"sched picks only runnable blocks" ~count:300
    (QCheck.triple
       (QCheck.oneofl Sched_policy.all)
       (QCheck.int_range (-1) 10)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8) (QCheck.int_bound 5)))
    (fun (policy, last, counts) ->
      let counts = Array.of_list counts in
      match Sched_policy.pick policy ~last ~counts with
      | Some i -> counts.(i) > 0
      | None -> Array.for_all (fun c -> c = 0) counts)

(* ---------- Instrument ---------- *)

let test_instrument () =
  let ins = Instrument.create () in
  Instrument.record_prim ins ~name:"grad" ~useful:3 ~issued:8;
  Instrument.record_prim ins ~name:"grad" ~useful:5 ~issued:8;
  Alcotest.(check (option (float 1e-12))) "utilization" (Some 0.5)
    (Instrument.utilization ins ~name:"grad");
  Alcotest.(check (option (float 1e-12))) "unknown prim" None
    (Instrument.utilization ins ~name:"mul");
  Instrument.record_block ins ~active:2 ~batch:4;
  Instrument.record_block ins ~active:4 ~batch:4;
  Alcotest.(check (float 1e-12)) "overall" 0.75 (Instrument.overall_utilization ins);
  Instrument.record_push ins ~lanes:3;
  Instrument.record_pop ins ~lanes:3;
  Instrument.record_depth ins 5;
  Instrument.record_depth ins 2;
  Alcotest.(check int) "pushes" 1 (Instrument.pushes ins);
  Alcotest.(check int) "max depth keeps max" 5 (Instrument.max_depth ins);
  Instrument.reset ins;
  Alcotest.(check int) "reset" 0 (Instrument.blocks_executed ins);
  Alcotest.(check (float 0.)) "reset utilization" 1. (Instrument.overall_utilization ins)

(* ---------- Stacked ---------- *)

let test_stacked_basic () =
  let s = Stacked.create ~z:3 ~elem:[| 2 |] () in
  Alcotest.(check (array int)) "top shape" [| 3; 2 |] (Tensor.shape (Stacked.top s));
  let all = [| true; true; true |] in
  Stacked.write_top_masked s ~mask:all
    (Tensor.create [| 3; 2 |] [| 1.; 1.; 2.; 2.; 3.; 3. |]);
  (* Save member 1 only, then overwrite everyone. *)
  Stacked.push s ~mask:[| false; true; false |];
  Stacked.write_top_masked s ~mask:all (Tensor.full [| 3; 2 |] 9.);
  Alcotest.(check int) "depth member 1" 1 (Stacked.depth s 1);
  Alcotest.(check int) "depth member 0" 0 (Stacked.depth s 0);
  Stacked.pop s ~mask:[| false; true; false |];
  let top = Stacked.top s in
  Alcotest.(check (float 0.)) "member 1 restored" 2. (Tensor.get top [| 1; 0 |]);
  Alcotest.(check (float 0.)) "member 0 untouched" 9. (Tensor.get top [| 0; 0 |])

let test_stacked_growth () =
  let s = Stacked.create ~z:2 ~elem:[||] ~initial_depth:1 () in
  let all = [| true; true |] in
  for i = 1 to 20 do
    Stacked.write_top_masked s ~mask:all (Tensor.full [| 2 |] (float_of_int i));
    Stacked.push s ~mask:all
  done;
  Alcotest.(check bool) "capacity grew" true (Stacked.capacity s >= 20);
  Alcotest.(check int) "max depth" 20 (Stacked.max_depth s);
  (* Pop everything back in LIFO order. *)
  for i = 20 downto 1 do
    Stacked.pop s ~mask:all;
    Alcotest.(check (float 0.)) "LIFO restore" (float_of_int i)
      (Tensor.get (Stacked.top s) [| 0 |])
  done

let test_stacked_underflow () =
  let s = Stacked.create ~z:1 ~elem:[||] () in
  Alcotest.check_raises "underflow"
    (Invalid_argument "Stacked.pop: underflow for member 0") (fun () ->
      Stacked.pop s ~mask:[| true |])

let prop_stacked_push_pop_identity =
  QCheck.Test.make ~name:"push;pop is identity on the top" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) QCheck.bool) (fun mask_list ->
      let z = List.length mask_list in
      let mask = Array.of_list mask_list in
      let s = Stacked.create ~z ~elem:[| 2 |] () in
      let v = Tensor.init [| z; 2 |] (fun i -> float_of_int ((i.(0) * 2) + i.(1))) in
      Stacked.write_top_masked s ~mask:(Array.make z true) v;
      let before = Tensor.copy (Stacked.top s) in
      Stacked.push s ~mask;
      Stacked.pop s ~mask;
      Tensor.equal before (Stacked.top s))

(* ---------- VM behaviours ---------- *)

let fib_compiled =
  Autobatch.compile ~input_shapes:[ Shape.scalar ] Test_programs.fib

let test_vm_inputs_not_mutated () =
  (* Regression: the local VM once wrote through to caller tensors. *)
  let inputs = Tensor.of_list [ 5.; 6.; 7. ] in
  let snapshot = Tensor.copy inputs in
  ignore (Autobatch.run_local fib_compiled ~batch:[ inputs ]);
  Alcotest.(check bool) "local VM leaves inputs intact" true
    (Tensor.equal snapshot inputs);
  ignore (Autobatch.run_pc fib_compiled ~batch:[ inputs ]);
  Alcotest.(check bool) "pc VM leaves inputs intact" true (Tensor.equal snapshot inputs)

let test_vm_rerun_same_result () =
  let batch = [ Tensor.of_list [ 8.; 9. ] ] in
  let a = Autobatch.run_pc fib_compiled ~batch in
  let b = Autobatch.run_pc fib_compiled ~batch in
  Alcotest.(check bool) "pc deterministic" true (Tensor.equal (List.hd a) (List.hd b));
  let c = Autobatch.run_local fib_compiled ~batch in
  let d = Autobatch.run_local fib_compiled ~batch in
  Alcotest.(check bool) "local deterministic" true (Tensor.equal (List.hd c) (List.hd d))

let test_vm_bad_inputs () =
  Alcotest.check_raises "local: scalar input"
    (Invalid_argument "Local_vm: inputs must carry a leading batch dimension")
    (fun () -> ignore (Autobatch.run_local fib_compiled ~batch:[ Tensor.scalar 1. ]));
  Alcotest.check_raises "local: no inputs"
    (Invalid_argument "Local_vm: at least one input required") (fun () ->
      ignore (Autobatch.run_local fib_compiled ~batch:[]));
  Alcotest.check_raises "pc: input count"
    (Invalid_argument "Pc_vm: input count mismatch") (fun () ->
      ignore
        (Autobatch.run_pc fib_compiled
           ~batch:[ Tensor.of_list [ 1. ]; Tensor.of_list [ 2. ] ]))

let test_vm_empty_active () =
  Alcotest.check_raises "empty active set"
    (Invalid_argument "Local_vm: initial active set is empty") (fun () ->
      ignore
        (Local_vm.run_active fib_compiled.Autobatch.registry fib_compiled.Autobatch.cfg
           ~batch:[ Tensor.of_list [ 1.; 2. ] ]
           ~active:[| false; false |]))

let test_vm_partial_active () =
  let batch = [ Tensor.of_list [ 3.; 4.; 5. ] ] in
  let out =
    Local_vm.run_active fib_compiled.Autobatch.registry fib_compiled.Autobatch.cfg
      ~batch ~active:[| true; false; true |]
  in
  let data = Tensor.data (List.hd out) in
  Alcotest.(check (float 0.)) "active member 0" 3. data.(0);
  Alcotest.(check (float 0.)) "active member 2" 8. data.(2)

let test_vm_step_limit () =
  let infinite =
    Lang.program ~main:"spin"
      [
        Lang.func "spin" ~params:[ "x" ]
          [
            Lang.while_ (Lang.prim "ge" [ Lang.var "x"; Lang.flt 0. ])
              [ Lang.assign "x" (Lang.prim "add" [ Lang.var "x"; Lang.flt 1. ]) ];
            Lang.return_ [ Lang.var "x" ];
          ];
      ]
  in
  let compiled = Autobatch.compile ~input_shapes:[ Shape.scalar ] infinite in
  let batch = [ Tensor.of_list [ 0. ] ] in
  Alcotest.check_raises "local step limit" Local_vm.Step_limit_exceeded (fun () ->
      ignore
        (Autobatch.run_local
           ~config:{ Local_vm.default_config with max_steps = 100 }
           compiled ~batch));
  Alcotest.check_raises "pc step limit" Pc_vm.Step_limit_exceeded (fun () ->
      ignore
        (Autobatch.run_pc
           ~config:{ Pc_vm.default_config with max_steps = 100 }
           compiled ~batch));
  Alcotest.check_raises "interp step limit" Interp.Step_limit_exceeded (fun () ->
      ignore
        (Autobatch.run_single ~max_steps:100 compiled ~member:0
           ~args:[ Tensor.scalar 0. ]))

let test_vm_engine_accounting () =
  let engine = Engine.create ~device:Device.cpu ~mode:Engine.Eager () in
  let config = { Local_vm.default_config with engine = Some engine } in
  ignore (Autobatch.run_local ~config fib_compiled ~batch:[ Tensor.of_list [ 6. ] ]);
  let c = (Engine.snapshot engine).Engine.at in
  Alcotest.(check bool) "time advanced" true (Engine.elapsed engine > 0.);
  Alcotest.(check bool) "blocks executed" true (c.Engine.Counters.blocks > 0);
  Alcotest.(check bool) "host calls for recursion" true (c.Engine.Counters.host_calls > 0);
  let engine2 = Engine.create ~device:Device.cpu ~mode:Engine.Fused () in
  let config2 = { Pc_vm.default_config with engine = Some engine2 } in
  ignore (Autobatch.run_pc ~config:config2 fib_compiled ~batch:[ Tensor.of_list [ 6. ] ]);
  let c2 = (Engine.snapshot engine2).Engine.at in
  Alcotest.(check int) "pc has no host calls" 0 c2.Engine.Counters.host_calls;
  Alcotest.(check bool) "pc fused launches" true (c2.Engine.Counters.fused_launches > 0)

let test_pc_max_depth_instrumented () =
  let ins = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some ins } in
  ignore (Autobatch.run_pc ~config fib_compiled ~batch:[ Tensor.of_list [ 10. ] ]);
  (* fib(10) recursion depth is at least 5 pc frames. *)
  Alcotest.(check bool) "depth recorded" true (Instrument.max_depth ins >= 5);
  Alcotest.(check int) "pushes balance pops" (Instrument.pushes ins)
    (Instrument.pops ins)

let test_pc_shape_change_rejected () =
  (* A program whose variable changes element shape across writes must be
     rejected by the runtime (static shapes are the contract). *)
  let bad =
    Lang.program ~main:"m"
      [
        Lang.func "m" ~params:[ "x" ]
          [
            Lang.assign "y" (Lang.var "x");
            Lang.assign "y" (Lang.vec [| 1.; 2. |]);
            Lang.return_ [ Lang.prim "sum" [ Lang.var "y" ] ];
          ];
      ]
  in
  (* Shape inference rejects it at compile time... *)
  (match Autobatch.compile ~input_shapes:[ Shape.scalar ] bad with
  | _ -> Alcotest.fail "expected shape conflict"
  | exception Shape_infer.Error _ -> ());
  (* ... and the lazy-allocation runtime rejects it at run time. *)
  let compiled = Autobatch.compile bad in
  (match Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ 1. ] ] with
  | _ -> Alcotest.fail "expected runtime shape error"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions shape change" true
      (String.length msg > 0))

let suites =
  [
    ( "sched",
      [
        t "earliest" `Quick test_sched_earliest;
        t "most active" `Quick test_sched_most_active;
        t "round robin" `Quick test_sched_round_robin;
        QCheck_alcotest.to_alcotest prop_sched_picks_nonzero;
      ] );
    ("instrument", [ t "counters and utilization" `Quick test_instrument ]);
    ( "stacked",
      [
        t "masked push/pop" `Quick test_stacked_basic;
        t "growth and LIFO" `Quick test_stacked_growth;
        t "underflow" `Quick test_stacked_underflow;
        QCheck_alcotest.to_alcotest prop_stacked_push_pop_identity;
      ] );
    ( "vm",
      [
        t "inputs not mutated" `Quick test_vm_inputs_not_mutated;
        t "reruns deterministic" `Quick test_vm_rerun_same_result;
        t "bad inputs rejected" `Quick test_vm_bad_inputs;
        t "empty active set rejected" `Quick test_vm_empty_active;
        t "partial active set" `Quick test_vm_partial_active;
        t "step limits" `Quick test_vm_step_limit;
        t "engine accounting" `Quick test_vm_engine_accounting;
        t "pc depth instrumented" `Quick test_pc_max_depth_instrumented;
        t "shape changes rejected" `Quick test_pc_shape_change_rejected;
      ] );
  ]

(* ---------- precompiled executor (Pc_jit) ---------- *)

let test_jit_matches_pc_fib () =
  let batch = [ Tensor.of_list [ 3.; 7.; 4.; 5.; 10. ] ] in
  let expected = Autobatch.run_pc fib_compiled ~batch in
  let exe = Autobatch.jit fib_compiled ~batch:5 in
  let got = Pc_jit.run exe ~batch in
  List.iter2
    (fun a b -> Alcotest.(check bool) "jit = pc (fib)" true (Tensor.equal a b))
    expected got;
  (* Reusable: a second run with different inputs. *)
  let batch2 = [ Tensor.of_list [ 1.; 2.; 9.; 0.; 6. ] ] in
  let expected2 = Autobatch.run_pc fib_compiled ~batch:batch2 in
  let got2 = Pc_jit.run exe ~batch:batch2 in
  List.iter2
    (fun a b -> Alcotest.(check bool) "jit reusable" true (Tensor.equal a b))
    expected2 got2

let test_jit_matches_pc_nuts () =
  let model = Gaussian_model.model ~dim:6 () in
  let reg, _ = Nuts_dsl.setup ~model () in
  let prog = Nuts_dsl.program () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch =
    Nuts_dsl.inputs ~q0:(Tensor.zeros [| 6 |]) ~eps:0.3 ~n_iter:4 ~n_burn:0 ~batch:4 ()
  in
  let expected = Autobatch.run_pc compiled ~batch in
  let exe = Autobatch.jit compiled ~batch:4 in
  let got = Pc_jit.run exe ~batch in
  List.iter2
    (fun a b -> Alcotest.(check bool) "jit = pc (NUTS)" true (Tensor.equal a b))
    expected got

let test_jit_requires_shapes () =
  let lazy_compiled = Autobatch.compile Test_programs.fib in
  (match Autobatch.jit lazy_compiled ~batch:2 with
  | _ -> Alcotest.fail "expected shape requirement error"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions input_shapes" true
      (String.length msg > 0))

let test_jit_engine_matches_pc () =
  (* Cost accounting agrees with the interpreted VM (static shapes make
     the per-block charges identical). *)
  let batch = [ Tensor.of_list [ 6.; 8. ] ] in
  let e1 = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let config = { Pc_vm.default_config with engine = Some e1 } in
  ignore (Autobatch.run_pc ~config fib_compiled ~batch);
  let e2 = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let exe = Autobatch.jit fib_compiled ~batch:2 in
  ignore (Pc_jit.run ~engine:e2 exe ~batch);
  Alcotest.(check (float 1e-12)) "same simulated time" (Engine.elapsed e1)
    (Engine.elapsed e2);
  Alcotest.(check int) "same fused launches" ((Engine.snapshot e1).Engine.at).Engine.Counters.fused_launches
    ((Engine.snapshot e2).Engine.at).Engine.Counters.fused_launches

let test_jit_instrument () =
  let ins_pc = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some ins_pc } in
  let batch = [ Tensor.of_list [ 9.; 4.; 11. ] ] in
  ignore (Autobatch.run_pc ~config fib_compiled ~batch);
  let ins_jit = Instrument.create () in
  let exe = Autobatch.jit fib_compiled ~batch:3 in
  ignore (Pc_jit.run ~instrument:ins_jit exe ~batch);
  Alcotest.(check int) "same blocks" (Instrument.blocks_executed ins_pc)
    (Instrument.blocks_executed ins_jit);
  Alcotest.(check int) "same pushes" (Instrument.pushes ins_pc)
    (Instrument.pushes ins_jit);
  Alcotest.(check (float 1e-12)) "same utilization"
    (Instrument.overall_utilization ins_pc)
    (Instrument.overall_utilization ins_jit)

let jit_suite =
  ( "pc-jit",
    [
      t "matches pc on fib + reusable" `Quick test_jit_matches_pc_fib;
      t "matches pc on NUTS" `Quick test_jit_matches_pc_nuts;
      t "requires inferred shapes" `Quick test_jit_requires_shapes;
      t "engine accounting matches" `Quick test_jit_engine_matches_pc;
      t "instrumentation matches" `Quick test_jit_instrument;
    ] )

(* ---------- the program-counter stack itself ---------- *)

let test_pc_stack_growth () =
  (* Start with capacity 1 and push far past it: the backing array must
     regrow without losing any member's saved frames. *)
  let z = 3 in
  let s = Pc_vm.Pc_stack.create ~z ~bottom:99 ~start:0 ~initial_depth:1 in
  let all = Array.make z true in
  let only b = Array.init z (fun i -> i = b) in
  for depth = 1 to 20 do
    Pc_vm.Pc_stack.set_top_masked s ~mask:all depth;
    Pc_vm.Pc_stack.push s ~mask:all
  done;
  Alcotest.(check bool) "capacity grew" true (s.Pc_vm.Pc_stack.cap >= 21);
  Alcotest.(check int) "max depth" 21 (Pc_vm.Pc_stack.max_depth s);
  (* Unwind member 1 alone; its frames come back in LIFO order while the
     other members' stacks are untouched. *)
  for depth = 20 downto 1 do
    Pc_vm.Pc_stack.pop s ~mask:(only 1);
    Alcotest.(check int)
      (Printf.sprintf "member 1 depth %d" depth)
      depth s.Pc_vm.Pc_stack.top.(1)
  done;
  Pc_vm.Pc_stack.pop s ~mask:(only 1);
  Alcotest.(check int) "member 1 bottom" 99 s.Pc_vm.Pc_stack.top.(1);
  Alcotest.(check int) "member 0 untouched" 21 s.Pc_vm.Pc_stack.sp.(0)

let test_pc_stack_masked_push () =
  let z = 2 in
  let s = Pc_vm.Pc_stack.create ~z ~bottom:(-1) ~start:7 ~initial_depth:2 in
  (* Push only member 0: member 1's stack pointer must not move. *)
  Pc_vm.Pc_stack.push s ~mask:[| true; false |];
  Alcotest.(check int) "member 0 sp" 2 s.Pc_vm.Pc_stack.sp.(0);
  Alcotest.(check int) "member 1 sp" 1 s.Pc_vm.Pc_stack.sp.(1);
  Pc_vm.Pc_stack.pop s ~mask:[| true; false |];
  Alcotest.(check int) "member 0 restored" 7 s.Pc_vm.Pc_stack.top.(0)

let test_pc_stack_underflow () =
  let s = Pc_vm.Pc_stack.create ~z:2 ~bottom:0 ~start:0 ~initial_depth:1 in
  (* Each member starts with the single bottom sentinel frame: one pop is
     fine, a second must raise rather than read out of bounds. *)
  Pc_vm.Pc_stack.pop s ~mask:[| false; true |];
  Alcotest.check_raises "underflow"
    (Invalid_argument "Pc_vm: pc stack underflow for member 1") (fun () ->
      Pc_vm.Pc_stack.pop s ~mask:[| false; true |])

let pc_stack_suite =
  ( "pc-stack",
    [
      t "growth preserves frames" `Quick test_pc_stack_growth;
      t "masked push isolates members" `Quick test_pc_stack_masked_push;
      t "underflow raises" `Quick test_pc_stack_underflow;
    ] )

let suites = suites @ [ jit_suite; pc_stack_suite ]
